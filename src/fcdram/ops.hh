/**
 * @file
 * FCDRAM operation builders: the library's public surface for issuing
 * in-DRAM NOT, N-input AND/OR/NAND/NOR, MAJ, RowClone and Frac
 * operations as violated-timing command programs.
 */

#ifndef FCDRAM_FCDRAM_OPS_HH
#define FCDRAM_FCDRAM_OPS_HH

#include <optional>
#include <vector>

#include "bender/bender.hh"
#include "dram/address.hh"

namespace fcdram {

/** Outcome of an N-input logic operation issued through Ops. */
struct LogicOpResult
{
    /** Columns that participate (shared between the subarray pair). */
    std::vector<ColId> columns;

    /** AND/OR result read from the compute rows (first compute row). */
    BitVector computeResult;

    /** NAND/NOR result read from the reference rows (first ref row). */
    BitVector referenceResult;
};

/**
 * High-level FCDRAM operation driver for one chip. Stateless apart
 * from the DramBender session it wraps.
 */
class Ops
{
  public:
    explicit Ops(DramBender &bender);

    /**
     * The violated-timing double-activation program
     * ACT first -> PRE -> ACT second (both gaps at the violated
     * target), followed by a restoring wait and PRE.
     */
    Program buildDoubleAct(BankId bank, RowId firstGlobal,
                           RowId secondGlobal) const;

    /**
     * The NOT program: ACT src (full tRAS) -> PRE -> ACT dst
     * (violated tRP) -> restore wait -> PRE.
     */
    Program buildNot(BankId bank, RowId srcGlobal,
                     RowId dstGlobal) const;

    /** RowClone: same program shape as NOT but within one subarray. */
    Program buildRowClone(BankId bank, RowId srcGlobal,
                          RowId dstGlobal) const;

    /**
     * The SiMRA in-subarray MAJ program: the violated double
     * activation of a same-subarray (RF, RL) pair. All rows of the
     * decoder's masked expansion charge-share, and the final
     * (restoring) PRE writes the sensed majority back into every
     * activated row.
     */
    Program buildMaj(BankId bank, RowId rfGlobal,
                     RowId rlGlobal) const;

    /**
     * Execute a NOT from src to dst (both global rows, neighboring
     * subarrays). Returns the destination rows actually activated
     * (empty if the chip cannot perform the operation for this pair).
     */
    std::vector<RowId> executeNot(BankId bank, RowId srcGlobal,
                                  RowId dstGlobal);

    /**
     * Execute a RowClone of src onto dst (same subarray).
     * @return true if the copy path triggered.
     */
    bool executeRowClone(BankId bank, RowId srcGlobal, RowId dstGlobal);

    /**
     * Initialize @p row to ~VDD/2 via the Frac idiom: pick a helper
     * row in the same subarray that pair-activates with @p row, write
     * all-1s/all-0s, and interrupt the charge-shared activation.
     *
     * @param avoid Rows (global) that must not be used as helpers.
     * @return The helper row used, or nullopt if none could be found.
     */
    std::optional<RowId> fracInit(BankId bank, RowId rowGlobal,
                                  const std::vector<RowId> &avoid);

    /**
     * Prepare the reference subarray rows for an N-input AND/NAND
     * (constants = all-1s) or OR/NOR (constants = all-0s) operation:
     * N-1 constant rows plus one Frac row.
     *
     * @param refRows Global ids of the N reference rows.
     * @return false if Frac initialization failed.
     */
    bool initReference(BankId bank, BoolOp op,
                       const std::vector<RowId> &refRows);

    /**
     * Execute an N-input logic operation. The reference rows must
     * already be initialized (initReference) and the operand rows
     * written. The violated sequence is issued to the original
     * (RF, RL) anchor pair whose activation defined the row sets;
     * using any other pair would activate a different set.
     *
     * @param op And, Or, Nand, or Nor.
     * @param refAnchor The RF row (global) of the discovered pair.
     * @param comAnchor The RL row (global) of the discovered pair.
     * @param refRows N reference rows (global, one subarray).
     * @param computeRows N compute rows (global, neighboring subarray).
     */
    LogicOpResult executeLogic(BankId bank, BoolOp op, RowId refAnchor,
                               RowId comAnchor,
                               const std::vector<RowId> &refRows,
                               const std::vector<RowId> &computeRows);

    /**
     * Fire a SiMRA double activation for a same-subarray (RF, RL)
     * pair. Rows must already hold their operand/constant/neutral
     * values. Returns the global rows actually activated together
     * (empty if no in-subarray multi-row activation occurred).
     */
    std::vector<RowId> executeMajActivation(BankId bank, RowId rfGlobal,
                                            RowId rlGlobal);

    /**
     * One-shot odd-input in-subarray MAJ (MAJ3 on a 4-row group,
     * MAJ5 on an 8-row group, generally on the decoder's
     * (rf, rl)-masked expansion): Frac-initializes one tiebreaker
     * row, balances the remaining rows with equal all-1s/all-0s
     * constants (which cancel in the majority), writes the operands,
     * fires the activation, and reads the result back from the
     * group's first row.
     *
     * @param operands Odd number of operand bit-vectors,
     *        operands.size() <= group size - 1.
     * @return The MAJ result, or nullopt when the pair does not
     *         expand to a group that can host the gate or the Frac
     *         initialization fails.
     * @throws std::invalid_argument when the operand count is even
     *         or zero (stale rows would vote in the majority).
     */
    std::optional<BitVector>
    executeMaj(BankId bank, RowId rfGlobal, RowId rlGlobal,
               const std::vector<BitVector> &operands);

    DramBender &bender() { return bender_; }

  private:
    DramBender &bender_;
};

/**
 * Donor local row that pair-activates with exactly @p targetLocal
 * under the decoder's same-subarray glitch: the XOR-flip scan shared
 * by Frac initialization and the PuD RowClone staging search.
 *
 * @param avoidLocal Local rows that must not be used as donors.
 * @return The donor local row, or kInvalidRow when none exists.
 */
RowId findPairActivatingDonor(const Chip &chip, RowId targetLocal,
                              const std::vector<RowId> &avoidLocal);

/**
 * Find (rf, rl) local-row pairs on a chip whose neighbor activation
 * has the requested NRF:NRL shape, by probing the decoder through
 * executed programs' activation events.
 *
 * @param chip Chip under test (const: probing is read-only).
 * @param nrf Desired rows in RF's subarray.
 * @param nrl Desired rows in RL's subarray.
 * @param maxPairs Stop after this many matches.
 * @param seed Sampling seed.
 */
std::vector<std::pair<RowId, RowId>>
findActivationPairs(const Chip &chip, int nrf, int nrl, int maxPairs,
                    std::uint64_t seed);

/**
 * Find (rf, rl) local-row pairs of one subarray whose same-subarray
 * glitch opens exactly @p activatedRows rows simultaneously (SiMRA
 * row groups). Candidates come from the decoder-hierarchy address
 * mask (RowDecoder::maskPartner); the per-pair coverage gate is
 * probed with seeded random bases.
 *
 * @param activatedRows Desired group size (power of two >= 2).
 * @param maxPairs Stop after this many matches.
 * @param seed Sampling seed.
 */
std::vector<std::pair<RowId, RowId>>
findSimraPairs(const Chip &chip, int activatedRows, int maxPairs,
               std::uint64_t seed);

} // namespace fcdram

#endif // FCDRAM_FCDRAM_OPS_HH
