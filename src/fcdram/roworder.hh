/**
 * @file
 * Physical row-order reverse engineering via RowHammer (paper
 * Section 5.2): hammering an aggressor flips bits in the physically
 * adjacent rows; a row with only one flipping neighbor sits at a
 * subarray edge (adjacent to a sense-amplifier stripe). Walking the
 * adjacency chain recovers the full physical order, from which the
 * Close/Middle/Far distance regions are derived.
 */

#ifndef FCDRAM_FCDRAM_ROWORDER_HH
#define FCDRAM_FCDRAM_ROWORDER_HH

#include <cstdint>
#include <vector>

#include "bender/bender.hh"
#include "config/chipprofile.hh"

namespace fcdram {

/** Recovered physical order of one subarray. */
struct RowOrder
{
    /**
     * Logical local row ids in physical order; physicalOrder.front()
     * is adjacent to the upper stripe (same index as the subarray).
     */
    std::vector<RowId> physicalOrder;

    /** Physical position of a logical local row (-1 if unknown). */
    int positionOf(RowId localRow) const;

    /**
     * Distance region of a logical row relative to a bounding stripe
     * (stripe == subarray id -> upper, subarray id + 1 -> lower).
     */
    Region regionFor(RowId localRow, bool lowerStripe) const;
};

/** RowHammer-based row-order mapper. */
class RowOrderMapper
{
  public:
    /**
     * @param bender Session on the chip under test.
     * @param hammerCount Aggressor activations per probe.
     */
    RowOrderMapper(DramBender &bender,
                   std::uint64_t hammerCount = 200000);

    /**
     * Logical local rows whose cells flip when @p aggressorLocal is
     * hammered (the physical neighbors).
     */
    std::vector<RowId> neighborsOf(BankId bank, SubarrayId subarray,
                                   RowId aggressorLocal);

    /**
     * Recover the physical order of a subarray by walking the
     * neighbor relation from an edge row.
     */
    RowOrder mapSubarray(BankId bank, SubarrayId subarray);

  private:
    DramBender &bender_;
    std::uint64_t hammerCount_;
};

} // namespace fcdram

#endif // FCDRAM_FCDRAM_ROWORDER_HH
