/**
 * @file
 * Activation-pattern classifier: the Section 4.2 methodology that
 * discovers which rows an ACT RF -> PRE -> ACT RL sequence activates,
 * using a WR overdrive and full readback, and the coverage statistics
 * over sampled (RF, RL) pairs (Fig. 5).
 */

#ifndef FCDRAM_FCDRAM_CLASSIFIER_HH
#define FCDRAM_FCDRAM_CLASSIFIER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bender/bender.hh"

namespace fcdram {

/** Discovered activation of one (RF, RL) pair. */
struct ClassifiedActivation
{
    bool simultaneous = false;

    /** Local rows (RF subarray) that captured the written pattern. */
    std::vector<RowId> firstRows;

    /** Local rows (RL subarray) that captured its complement. */
    std::vector<RowId> secondRows;

    /** "4:8"-style descriptor; "none" if not simultaneous. */
    std::string typeName() const;
};

/** Coverage statistics over a sampled pair population. */
struct CoverageStats
{
    /** Pairs per NRF:NRL type name. */
    std::map<std::string, std::uint64_t> counts;

    std::uint64_t totalPairs = 0;

    /** Coverage (fraction of all sampled pairs) of a type. */
    double coverage(const std::string &type) const;
};

/**
 * WR-readback activation classifier.
 */
class ActivationClassifier
{
  public:
    /**
     * @param bender Session on the chip under test.
     * @param seed Seed for pair sampling and probe patterns.
     */
    ActivationClassifier(DramBender &bender, std::uint64_t seed);

    /**
     * Classify one (RF, RL) pair across a neighboring subarray pair.
     *
     * @param bank Bank under test.
     * @param firstSubarray RF's subarray.
     * @param rfLocal RF's local row.
     * @param secondSubarray RL's subarray (must neighbor the first).
     * @param rlLocal RL's local row.
     */
    ClassifiedActivation classify(BankId bank, SubarrayId firstSubarray,
                                  RowId rfLocal,
                                  SubarrayId secondSubarray,
                                  RowId rlLocal);

    /**
     * Sample @p pairs random (RF, RL) combinations on a neighboring
     * subarray pair and accumulate coverage per activation type.
     */
    CoverageStats sampleCoverage(BankId bank, SubarrayId firstSubarray,
                                 SubarrayId secondSubarray, int pairs);

  private:
    DramBender &bender_;
    Rng rng_;
};

} // namespace fcdram

#endif // FCDRAM_FCDRAM_CLASSIFIER_HH
