#include "fcdram/ops.hh"

#include <cassert>
#include <stdexcept>

#include "common/rng.hh"
#include "dram/openbitline.hh"
#include "obs/telemetry.hh"

namespace fcdram {

Ops::Ops(DramBender &bender) : bender_(bender)
{
}

Program
Ops::buildDoubleAct(BankId bank, RowId firstGlobal,
                    RowId secondGlobal) const
{
    ProgramBuilder builder = bender_.newProgram();
    builder.act(bank, firstGlobal, 0.0)
        .pre(bank, kViolatedGapTargetNs)
        .act(bank, secondGlobal, kViolatedGapTargetNs)
        .preNominal(bank);
    return builder.build();
}

Program
Ops::buildNot(BankId bank, RowId srcGlobal, RowId dstGlobal) const
{
    ProgramBuilder builder = bender_.newProgram();
    builder.act(bank, srcGlobal, 0.0)
        .pre(bank, TimingParams::nominal().tRas)
        .act(bank, dstGlobal, kViolatedGapTargetNs)
        .preNominal(bank);
    return builder.build();
}

Program
Ops::buildRowClone(BankId bank, RowId srcGlobal, RowId dstGlobal) const
{
    return buildNot(bank, srcGlobal, dstGlobal);
}

Program
Ops::buildMaj(BankId bank, RowId rfGlobal, RowId rlGlobal) const
{
    assert(sameSubarray(bender_.chip().geometry(), rfGlobal, rlGlobal));
    return buildDoubleAct(bank, rfGlobal, rlGlobal);
}

std::vector<RowId>
Ops::executeMajActivation(BankId bank, RowId rfGlobal, RowId rlGlobal)
{
    const obs::DramLabel label("MAJ");
    const ExecResult result =
        bender_.execute(buildMaj(bank, rfGlobal, rlGlobal));
    std::vector<RowId> rows;
    const GeometryConfig &geometry = bender_.chip().geometry();
    for (const ActivationEvent &event : result.activations) {
        if (event.firstSubarray != event.secondSubarray)
            continue;
        for (const RowId local : event.sets.secondRows) {
            rows.push_back(
                composeRow(geometry, event.firstSubarray, local));
        }
    }
    return rows;
}

std::optional<BitVector>
Ops::executeMaj(BankId bank, RowId rfGlobal, RowId rlGlobal,
                const std::vector<BitVector> &operands)
{
    // An even operand count would leave one group row unassigned
    // (the remainder no longer splits into balanced constant pairs)
    // and let stale row contents vote in the majority; reject it
    // outright rather than only in debug builds.
    if (operands.empty() || operands.size() % 2 == 0) {
        throw std::invalid_argument(
            "Ops::executeMaj: operand count must be odd");
    }
    const GeometryConfig &geometry = bender_.chip().geometry();
    const RowAddress rf = decomposeRow(geometry, rfGlobal);
    const RowAddress rl = decomposeRow(geometry, rlGlobal);
    assert(rf.subarray == rl.subarray);
    const auto set = bender_.chip().decoder().sameSubarrayActivation(
        rf.localRow, rl.localRow);
    const auto m = operands.size();
    // m operands + balanced constant pairs + one neutral tiebreaker
    // must exactly fill the group; the group size is even (a power of
    // two) and m odd, so the remainder splits into pairs.
    if (set.size() < m + 1)
        return std::nullopt;
    std::vector<RowId> rows;
    rows.reserve(set.size());
    for (const RowId local : set)
        rows.push_back(composeRow(geometry, rf.subarray, local));

    const RowId neutral = rows.back();
    if (!fracInit(bank, neutral, rows))
        return std::nullopt;
    for (std::size_t i = 0; i < m; ++i)
        bender_.writeRow(bank, rows[i], operands[i]);
    const auto columns = static_cast<std::size_t>(geometry.columns);
    const std::size_t pairs = (set.size() - m - 1) / 2;
    for (std::size_t i = 0; i < pairs; ++i) {
        bender_.writeRow(bank, rows[m + 2 * i],
                         BitVector(columns, true));
        bender_.writeRow(bank, rows[m + 2 * i + 1],
                         BitVector(columns, false));
    }
    const auto activated =
        executeMajActivation(bank, rfGlobal, rlGlobal);
    if (activated.size() != rows.size())
        return std::nullopt;
    return bender_.readRow(bank, rows.front());
}

std::vector<RowId>
Ops::executeNot(BankId bank, RowId srcGlobal, RowId dstGlobal)
{
    const obs::DramLabel label("NOT");
    const ExecResult result =
        bender_.execute(buildNot(bank, srcGlobal, dstGlobal));
    std::vector<RowId> destinations;
    const GeometryConfig &geometry = bender_.chip().geometry();
    for (const ActivationEvent &event : result.activations) {
        if (event.firstSubarray == event.secondSubarray)
            continue;
        for (const RowId local : event.sets.secondRows) {
            destinations.push_back(
                composeRow(geometry, event.secondSubarray, local));
        }
    }
    return destinations;
}

bool
Ops::executeRowClone(BankId bank, RowId srcGlobal, RowId dstGlobal)
{
    assert(sameSubarray(bender_.chip().geometry(), srcGlobal, dstGlobal));
    const obs::DramLabel label("RowClone");
    const ExecResult result =
        bender_.execute(buildRowClone(bank, srcGlobal, dstGlobal));
    return !result.activations.empty();
}

RowId
findPairActivatingDonor(const Chip &chip, RowId targetLocal,
                        const std::vector<RowId> &avoidLocal)
{
    const auto rows =
        static_cast<RowId>(chip.geometry().rowsPerSubarray);
    for (RowId flip = 1; flip < rows; ++flip) {
        const RowId donor = targetLocal ^ flip;
        bool excluded = false;
        for (const RowId r : avoidLocal)
            excluded |= r == donor;
        if (excluded)
            continue;
        const auto set =
            chip.decoder().sameSubarrayActivation(donor, targetLocal);
        if (set.size() == 2)
            return donor;
    }
    return kInvalidRow;
}

std::optional<RowId>
Ops::fracInit(BankId bank, RowId rowGlobal,
              const std::vector<RowId> &avoid)
{
    const GeometryConfig &geometry = bender_.chip().geometry();
    const RowAddress address = decomposeRow(geometry, rowGlobal);
    std::vector<RowId> avoid_local;
    for (const RowId r : avoid) {
        const RowAddress a = decomposeRow(geometry, r);
        if (a.subarray == address.subarray)
            avoid_local.push_back(a.localRow);
    }
    const RowId helper_local = findPairActivatingDonor(
        bender_.chip(), address.localRow, avoid_local);
    if (helper_local == kInvalidRow)
        return std::nullopt;
    const RowId helper =
        composeRow(geometry, address.subarray, helper_local);
    // Charge-share an all-1s helper with an all-0s target and
    // interrupt the restore: both rows settle near VDD/2.
    BitVector ones(static_cast<std::size_t>(geometry.columns), true);
    BitVector zeros(static_cast<std::size_t>(geometry.columns), false);
    bender_.writeRow(bank, helper, ones);
    bender_.writeRow(bank, rowGlobal, zeros);
    ProgramBuilder builder = bender_.newProgram();
    builder.act(bank, helper, 0.0)
        .pre(bank, kViolatedGapTargetNs)
        .act(bank, rowGlobal, kViolatedGapTargetNs)
        .pre(bank, kViolatedGapTargetNs);
    const obs::DramLabel label("Frac");
    bender_.execute(builder.build());
    return helper;
}

bool
Ops::initReference(BankId bank, BoolOp op,
                   const std::vector<RowId> &refRows)
{
    assert(!refRows.empty());
    const GeometryConfig &geometry = bender_.chip().geometry();
    const bool and_family = op == BoolOp::And || op == BoolOp::Nand;
    BitVector constant(static_cast<std::size_t>(geometry.columns),
                       and_family);
    // The Frac row must be initialized last: its helper activation
    // would otherwise be disturbed by later writes.
    for (std::size_t i = 0; i + 1 < refRows.size(); ++i)
        bender_.writeRow(bank, refRows[i], constant);
    const auto helper = fracInit(bank, refRows.back(), refRows);
    if (!helper)
        return false;
    // Re-write the constants in case the Frac helper overlapped a
    // constant row's bitline transient (cheap and safe).
    for (std::size_t i = 0; i + 1 < refRows.size(); ++i)
        bender_.writeRow(bank, refRows[i], constant);
    return true;
}

LogicOpResult
Ops::executeLogic(BankId bank, BoolOp op, RowId refAnchor,
                  RowId comAnchor, const std::vector<RowId> &refRows,
                  const std::vector<RowId> &computeRows)
{
    (void)op;
    assert(!refRows.empty() && !computeRows.empty());
    const GeometryConfig &geometry = bender_.chip().geometry();
    const RowAddress ref = decomposeRow(geometry, refAnchor);
    const RowAddress com = decomposeRow(geometry, comAnchor);

    const ExecResult exec = [&] {
        const obs::DramLabel label("Logic");
        return bender_.execute(
            buildDoubleAct(bank, refAnchor, comAnchor));
    }();
    (void)exec;

    LogicOpResult result;
    result.columns = sharedColumns(geometry, ref.subarray, com.subarray);
    result.computeResult = bender_.readRow(bank, computeRows.front());
    result.referenceResult = bender_.readRow(bank, refRows.front());
    return result;
}

std::vector<std::pair<RowId, RowId>>
findSimraPairs(const Chip &chip, int activatedRows, int maxPairs,
               std::uint64_t seed)
{
    std::vector<std::pair<RowId, RowId>> pairs;
    const RowDecoder &decoder = chip.decoder();
    if (activatedRows < 2 ||
        activatedRows > decoder.maxSameSubarrayRows())
        return pairs;
    const auto rows =
        static_cast<RowId>(chip.geometry().rowsPerSubarray);
    Rng rng(seed);
    const int max_probes = 20000;
    for (int probe = 0; probe < max_probes &&
                        static_cast<int>(pairs.size()) < maxPairs;
         ++probe) {
        const auto base = static_cast<RowId>(rng.below(rows));
        const RowId partner = decoder.maskPartner(base, activatedRows);
        if (partner == kInvalidRow)
            return pairs; // Mask unreachable on this decoder.
        const auto set =
            decoder.sameSubarrayActivation(partner, base);
        if (static_cast<int>(set.size()) == activatedRows)
            pairs.emplace_back(partner, base);
    }
    return pairs;
}

std::vector<std::pair<RowId, RowId>>
findActivationPairs(const Chip &chip, int nrf, int nrl, int maxPairs,
                    std::uint64_t seed)
{
    std::vector<std::pair<RowId, RowId>> pairs;
    const auto rows =
        static_cast<RowId>(chip.geometry().rowsPerSubarray);
    Rng rng(seed);
    // Bounded random probing; the decoder is deterministic, so each
    // (rf, rl) candidate needs only one query.
    const int max_probes = 20000;
    for (int probe = 0; probe < max_probes &&
                        static_cast<int>(pairs.size()) < maxPairs;
         ++probe) {
        const auto rf = static_cast<RowId>(rng.below(rows));
        const auto rl = static_cast<RowId>(rng.below(rows));
        const ActivationSets sets =
            chip.decoder().neighborActivation(rf, rl);
        if (!sets.simultaneous && !sets.sequential)
            continue;
        if (sets.nrf() == nrf && sets.nrl() == nrl)
            pairs.emplace_back(rf, rl);
    }
    return pairs;
}

} // namespace fcdram
