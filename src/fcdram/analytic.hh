/**
 * @file
 * Analytic success-rate engine: evaluates the same margin model as
 * the Monte-Carlo executor in closed form, per cell, and (optionally)
 * samples a binomial at the paper's 10,000-trial budget so the
 * resulting distributions have realistic sampling texture.
 */

#ifndef FCDRAM_FCDRAM_ANALYTIC_HH
#define FCDRAM_FCDRAM_ANALYTIC_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "dram/chip.hh"
#include "fcdram/analyzer.hh"
#include "stats/summary.hh"

namespace fcdram {

/** Analytic evaluation options. */
struct AnalyticConfig
{
    /** Trial budget for the binomial sampling (paper: 10,000). */
    int trials = 10000;

    /** If false, report exact probabilities instead of sampling. */
    bool sampleBinomial = true;
};

/** One evaluated cell with its physical context. */
struct CellSample
{
    RowId rowLocal = 0;   ///< Local row of the measured cell.
    ColId col = 0;
    Region ownRegion = Region::Middle;   ///< Measured row's region.
    Region otherRegion = Region::Middle; ///< Opposite side's region.
    double probability = 0.0; ///< Per-trial success probability.
};

/**
 * Closed-form per-cell success-rate evaluation for one chip.
 */
class AnalyticAnalyzer
{
  public:
    /**
     * @param chip Chip under test (not mutated).
     * @param config Evaluation options.
     * @param seed Seed for the binomial sampling.
     */
    AnalyticAnalyzer(const Chip &chip, const AnalyticConfig &config,
                     std::uint64_t seed);

    /**
     * Per-cell samples of the NOT operation for one (src, dst) pair;
     * cells are all (destination row, shared column) combinations,
     * ownRegion = destination row's region, otherRegion = source
     * row's. Empty if the pair does not activate.
     */
    std::vector<CellSample> notSamples(BankId bank, RowId srcGlobal,
                                       RowId dstGlobal,
                                       const OpConditions &cond) const;

    /**
     * Per-cell samples of a logic operation for one N:N
     * (RF=reference, RL=compute) pair. For And/Or the compute side is
     * measured (ownRegion = compute row's region); for Nand/Nor the
     * reference side.
     *
     * @param pattern Random integrates over Binomial(N, 1/2) operand
     *        counts with coupling 0.5; AllOnes/AllZeros use the same
     *        weights with zero coupling (the paper's all-1s/0s class).
     * @param fixedOnes When >= 0, overrides the integration with a
     *        fixed operand ones-count (Fig. 16 sweeps).
     */
    std::vector<CellSample> logicSamples(BankId bank, BoolOp op,
                                         RowId refGlobal,
                                         RowId comGlobal,
                                         const OpConditions &cond,
                                         PatternClass pattern,
                                         int fixedOnes = -1) const;

    /**
     * Per-cell samples of a same-subarray SiMRA MAJ operation for one
     * (rf, rl) pair whose masked expansion forms the row group:
     * @p operandCells rows carry operand data, @p neutralCells are
     * Frac-initialized VDD/2 tiebreakers, and the remaining rows
     * split into balanced all-1s/all-0s constant pairs (which cancel
     * in the majority). Cells are all (activated row, column)
     * combinations — the in-subarray mechanism is not confined to a
     * shared stripe. Operand ones-counts integrate over
     * Binomial(operandCells, 1/2) unless @p fixedOnes >= 0 pins them.
     * Empty if the pair does not expand to a group large enough for
     * the gate.
     */
    std::vector<CellSample> majSamples(BankId bank, RowId rfGlobal,
                                       RowId rlGlobal,
                                       int operandCells,
                                       int neutralCells,
                                       const OpConditions &cond,
                                       int fixedOnes = -1) const;

    /** Collapse samples into a (possibly binomial-sampled) SampleSet. */
    SampleSet toSampleSet(const std::vector<CellSample> &samples);

    /** Convert one probability to a (possibly sampled) percentage. */
    double toPercent(double probability);

    const Chip &chip() const { return chip_; }

  private:
    /** Weight of each numOnes under a pattern class. */
    static std::vector<double> onesWeights(PatternClass pattern, int n);

    const Chip &chip_;
    AnalyticConfig config_;
    Rng rng_;
};

} // namespace fcdram

#endif // FCDRAM_FCDRAM_ANALYTIC_HH
