/**
 * @file
 * Monte-Carlo success-rate analyzer: runs the paper's trial
 * methodology (Sections 5.2 and 6.2) at command granularity through
 * the executor and accumulates per-cell success rates.
 */

#ifndef FCDRAM_FCDRAM_ANALYZER_HH
#define FCDRAM_FCDRAM_ANALYZER_HH

#include <cstdint>
#include <vector>

#include "fcdram/ops.hh"
#include "stats/successrate.hh"

namespace fcdram {

/** Data-pattern class used by the characterization. */
enum class PatternClass : std::uint8_t {
    Random,   ///< Fresh random operands per trial.
    AllOnes,  ///< Every operand row all logic-1.
    AllZeros, ///< Every operand row all logic-0.
    FixedOnes ///< Exactly k operand rows all-1 (Fig. 16 sweeps).
};

/** Configuration of a NOT characterization run. */
struct NotTrialConfig
{
    BankId bank = 0;
    RowId srcGlobal = 0; ///< RF of the violated sequence.
    RowId dstGlobal = 0; ///< RL.
    int trials = 200;
    PatternClass pattern = PatternClass::Random;
};

/** Result of a NOT characterization run. */
struct NotTrialResult
{
    /** Destination rows actually activated (global ids). */
    std::vector<RowId> destinationRows;

    /** Shared columns measured. */
    std::vector<ColId> columns;

    /** Per-cell success counts (cell = dstRowIdx * columns + colIdx). */
    SuccessRateAccumulator cells{0};
};

/** Configuration of a logic-op characterization run. */
struct LogicTrialConfig
{
    BankId bank = 0;
    BoolOp op = BoolOp::And; ///< And/Nand measure the same sequence.
    RowId refGlobal = 0;     ///< RF: a row of the reference subarray.
    RowId comGlobal = 0;     ///< RL: a row of the compute subarray.
    int trials = 200;
    PatternClass pattern = PatternClass::Random;
    int fixedOnes = 0; ///< For PatternClass::FixedOnes.
};

/** Result of a logic-op characterization run. */
struct LogicTrialResult
{
    int numInputs = 0;

    std::vector<RowId> referenceRows; ///< Global ids.
    std::vector<RowId> computeRows;   ///< Global ids.
    std::vector<ColId> columns;       ///< Shared columns measured.

    /** Compute-side (AND/OR) per-cell successes. */
    SuccessRateAccumulator computeCells{0};

    /** Reference-side (NAND/NOR) per-cell successes. */
    SuccessRateAccumulator referenceCells{0};
};

/**
 * Runs trial campaigns against one chip through the full
 * command-level simulation path.
 */
class SuccessRateAnalyzer
{
  public:
    /**
     * @param bender Testing session for the chip under test.
     * @param seed Seed for the per-trial data patterns.
     */
    SuccessRateAnalyzer(DramBender &bender, std::uint64_t seed);

    /**
     * Characterize the NOT operation for one (src, dst) pair.
     * Destination rows are initialized with the source pattern each
     * trial, so a cell that retains its value always counts as a
     * failure.
     */
    NotTrialResult runNot(const NotTrialConfig &config);

    /**
     * Characterize an N-input logic operation for one (RF, RL) pair.
     * The activation must have the N:N shape; N is discovered from
     * the decoder. Reference rows are (re)initialized every trial.
     */
    LogicTrialResult runLogic(const LogicTrialConfig &config);

  private:
    DramBender &bender_;
    Ops ops_;
    Rng rng_;
};

} // namespace fcdram

#endif // FCDRAM_FCDRAM_ANALYZER_HH
