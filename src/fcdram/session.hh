/**
 * @file
 * FleetSession: the experiment-orchestration engine behind the
 * characterization campaign.
 *
 * A session owns one lazily-constructed, immutable Chip per module of
 * the Table-1 fleet, memoizes subarray-pair sampling and
 * qualifying-pair discovery keyed by (module, pair context, predicate
 * class), and fans per-module experiment work out over a
 * deterministic thread-pool scheduler. Per-module seeds derive from
 * the campaign seed and the module's stable fleet index, so
 * single-threaded and multi-threaded runs produce bit-identical
 * results, and every figure experiment shares the same discovery
 * caches: the O(figures x probes) redundant (RF, RL) probing the old
 * per-figure orchestration paid becomes O(probes), done once.
 */

#ifndef FCDRAM_FCDRAM_SESSION_HH
#define FCDRAM_FCDRAM_SESSION_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "config/fleet.hh"
#include "dram/chip.hh"
#include "fcdram/analytic.hh"
#include "fcdram/scheduler.hh"
#include "obs/telemetry.hh"
#include "stats/summary.hh"

namespace fcdram {

/** Campaign-wide knobs. */
struct CampaignConfig
{
    /** Simulated chip dimensions (defaults to a bench-sized chip). */
    GeometryConfig geometry;

    /** Banks sampled per chip. */
    int banksPerChip = 1;

    /** Neighboring subarray pairs sampled per bank. */
    int subarrayPairsPerBank = 4;

    /** Qualifying (RF, RL) pairs kept per chip and configuration. */
    int pairSamplesPerConfig = 8;

    /** Random (RF, RL) probes used to find qualifying pairs. */
    int probesPerPair = 4000;

    /** Analytic engine options (trial budget etc.). */
    AnalyticConfig analytic;

    /** Scheduler worker threads; <= 0 selects hardware concurrency. */
    int workers = 0;

    std::uint64_t seed = 0xF00DULL;

    CampaignConfig();

    /** Scaled-down configuration for unit tests. */
    static CampaignConfig forTests();
};

/** One sampled subarray-pair context on a chip. */
struct PairContext
{
    BankId bank = 0;
    SubarrayId lowSubarray = 0; ///< Pairs with lowSubarray + 1.
};

/**
 * Predicate class over activation sets for qualifying-pair discovery.
 * Queries are small value types (not opaque callables) so that
 * discovery results can be memoized per (module, context, query) and
 * shared by every experiment asking the same question.
 */
struct PairQuery
{
    /** Accepted neighbor-activation kinds. */
    enum class Activation : std::uint8_t {
        Any,          ///< Simultaneous or sequential.
        Simultaneous, ///< Simultaneous only.

        /**
         * Same-subarray simultaneous activation (SiMRA row groups):
         * both probed rows live in the context's low subarray and
         * destRows constrains the masked-expansion group size.
         */
        SameSubarray,
    };

    Activation activation = Activation::Simultaneous;
    int sourceRows = -1; ///< Required NRF; -1 leaves it unconstrained.
    int destRows = -1;   ///< Required NRL; -1 leaves it unconstrained.

    /** Sim-or-seq activation reaching @p dest destination rows. */
    static PairQuery anyWithDest(int dest);

    /** Simultaneous activation reaching @p dest destination rows. */
    static PairQuery simultaneousWithDest(int dest);

    /** Simultaneous N:N activation (logic ops with N inputs). */
    static PairQuery square(int inputs);

    /** Same-subarray simultaneous activation of @p rows rows. */
    static PairQuery sameSubarray(int rows);

    /** Whether an activation-set observation satisfies the query. */
    bool matches(const ActivationSets &sets) const;

    /**
     * Canonical 64-bit key. Also salts the discovery seed, so two
     * experiments asking the same question probe the same pairs (and
     * hit the session cache) regardless of which figure asked first.
     */
    std::uint64_t key() const;

    bool operator<(const PairQuery &other) const;
};

/**
 * Qualifying (RF, RL) discovery core: probe random local-row pairs of
 * a subarray-pair context and keep those whose neighbor activation
 * satisfies @p query, as global row ids. Pure in (chip, seed); the
 * session memoizes it.
 */
std::vector<std::pair<RowId, RowId>>
findQualifyingPairs(const Chip &chip, const PairContext &context,
                    const PairQuery &query, int probes, int maxPairs,
                    std::uint64_t seed);

/**
 * Fleet-scale experiment engine with cached per-module state. Thread
 * safe: all caches are internally synchronized, and cached values are
 * immutable once published.
 */
class FleetSession
{
  public:
    /** Fleet slice an experiment runs over. */
    enum class Fleet {
        SkHynix, ///< SK Hynix rows of Table 1 (logic-capable designs).
        Table1,  ///< Full Table-1 fleet (SK Hynix + Samsung).
    };

    /** Stable handle on one module of the Table-1 fleet. */
    struct Module
    {
        const ModuleSpec *spec = nullptr;
        std::size_t index = 0;  ///< Stable 1-based fleet enumeration.
        std::uint64_t seed = 0; ///< taskSeed(campaign seed, index).
    };

    /** Per-module view handed to experiment visitors. */
    struct ModuleView
    {
        const Module &module;
        const ModuleSpec &spec;
        const Chip &chip;
        std::uint64_t seed;
        const std::vector<PairContext> &contexts;
    };

    /** Cache effectiveness counters (see cacheStats()). */
    struct CacheStats
    {
        std::uint64_t chipBuilds = 0;  ///< Chips constructed so far.
        std::uint64_t pairLookups = 0; ///< qualifyingPairs() calls.
        std::uint64_t pairHits = 0;    ///< ... served from the cache.
    };

    explicit FleetSession(
        const CampaignConfig &config = CampaignConfig());

    const CampaignConfig &config() const { return config_; }
    const Scheduler &scheduler() const { return scheduler_; }

    /** Modules of a fleet slice, in stable enumeration order. */
    const std::vector<Module> &modules(Fleet fleet) const;

    /** Module specs of a fleet slice (one entry per Table-1 row). */
    const std::vector<ModuleSpec> &specs(Fleet fleet) const;

    /** First module matching a design, or nullptr. */
    const Module *findModule(Manufacturer manufacturer, int densityGbit,
                             char dieRevision,
                             std::uint32_t speedMt) const;

    /** Cached immutable chip of a module (lazily constructed). */
    const Chip &chip(const Module &module) const;

    /** Memoized sampled subarray-pair contexts of a module's chip. */
    const std::vector<PairContext> &
    pairContexts(const Module &module) const;

    /** Memoized qualifying pairs for (module, context, query). */
    const std::vector<std::pair<RowId, RowId>> &
    qualifyingPairs(const Module &module, const PairContext &context,
                    const PairQuery &query) const;

    /**
     * Fresh private chip for command-level (mutating) flows such as
     * DramBender sessions; shares the session geometry.
     */
    Chip checkoutChip(const Module &module) const;
    Chip checkoutChip(const ChipProfile &profile,
                      std::uint64_t seed) const;

    /** Snapshot of the cache counters. */
    CacheStats cacheStats() const;

    /**
     * Run @p visit once per module of @p fleet on the scheduler and
     * fold the per-module accumulators in module order (mergeAccum),
     * which makes the result independent of the worker count. The
     * visitor must derive all randomness from the view's seed.
     */
    template <class Accum, class Visit>
    Accum runOverFleet(Fleet fleet, Visit visit) const
    {
        const std::vector<Module> &fleetModules = modules(fleet);
        std::vector<Accum> partials(fleetModules.size());
        scheduler_.run(fleetModules.size(), [&](std::size_t i) {
            const Module &module = fleetModules[i];
            const obs::MetricScope scope(module.index, 0);
            obs::Span span(obs::global(), "fleet.task");
            span.arg("module",
                     static_cast<std::uint64_t>(module.index));
            const ModuleView view{module, *module.spec, chip(module),
                                  module.seed, pairContexts(module)};
            visit(view, partials[i]);
        });
        Accum result{};
        for (Accum &partial : partials)
            mergeAccum(result, std::move(partial));
        return result;
    }

    /**
     * Tiled variant of runOverFleet: splits every module's work into
     * @p tilesPerModule independent tasks, so small fleets still
     * saturate a many-worker scheduler (the (module x trial-block)
     * decomposition of the Monte-Carlo benches). The visitor receives
     * (view, tile, tilesPerModule, accum) with tile in
     * [0, tilesPerModule) and must partition its work by the tile
     * index and derive randomness from
     * Scheduler::taskSeed(view.seed, tile); partials fold in (module,
     * tile) order, so results stay independent of the worker count.
     */
    template <class Accum, class Visit>
    Accum runOverFleetTiled(Fleet fleet, std::size_t tilesPerModule,
                            Visit visit) const
    {
        const std::vector<Module> &fleetModules = modules(fleet);
        if (tilesPerModule == 0)
            tilesPerModule = 1;
        const std::size_t tiles =
            fleetModules.size() * tilesPerModule;
        std::vector<Accum> partials(tiles);
        scheduler_.run(tiles, [&](std::size_t i) {
            const Module &module = fleetModules[i / tilesPerModule];
            const std::size_t tile = i % tilesPerModule;
            const obs::MetricScope scope(module.index, tile);
            obs::Span span(obs::global(), "fleet.tile");
            span.arg("module",
                     static_cast<std::uint64_t>(module.index));
            span.arg("tile", static_cast<std::uint64_t>(tile));
            const ModuleView view{module, *module.spec, chip(module),
                                  module.seed, pairContexts(module)};
            visit(view, tile, tilesPerModule, partials[i]);
        });
        Accum result{};
        for (Accum &partial : partials)
            mergeAccum(result, std::move(partial));
        return result;
    }

    /** Accumulator folds used by runOverFleet. */
    static void mergeAccum(SampleSet &into, SampleSet &&from)
    {
        into.merge(std::move(from));
    }

    template <class A, class B>
    static void mergeAccum(std::pair<A, B> &into, std::pair<A, B> &&from)
    {
        mergeAccum(into.first, std::move(from.first));
        mergeAccum(into.second, std::move(from.second));
    }

    template <class T, std::size_t N>
    static void mergeAccum(std::array<T, N> &into,
                           std::array<T, N> &&from)
    {
        for (std::size_t i = 0; i < N; ++i)
            mergeAccum(into[i], std::move(from[i]));
    }

    template <class K, class V, class C>
    static void mergeAccum(std::map<K, V, C> &into,
                           std::map<K, V, C> &&from)
    {
        for (auto &[key, value] : from)
            mergeAccum(into[key], std::move(value));
    }

    /**
     * Any accumulator exposing mergeFrom(T&&) folds through it, so
     * subsystems (e.g. the PuD query engine) can define fleet
     * accumulators without editing this overload set.
     */
    template <class T>
    static auto mergeAccum(T &into, T &&from)
        -> decltype(into.mergeFrom(std::move(from)), void())
    {
        into.mergeFrom(std::move(from));
    }

  private:
    struct PairCacheKey
    {
        std::size_t module = 0;
        BankId bank = 0;
        SubarrayId lowSubarray = 0;
        PairQuery query;

        bool operator<(const PairCacheKey &other) const;
    };

    CampaignConfig config_;
    Scheduler scheduler_;
    std::vector<Module> table1Modules_;
    std::vector<Module> skHynixModules_;
    std::vector<ModuleSpec> skHynixSpecs_;

    mutable std::mutex mutex_;
    mutable std::map<std::size_t, std::unique_ptr<Chip>> chips_;
    mutable std::map<std::size_t, std::vector<PairContext>> contexts_;
    mutable std::map<PairCacheKey, std::vector<std::pair<RowId, RowId>>>
        pairs_;
    mutable CacheStats stats_;
};

} // namespace fcdram

#endif // FCDRAM_FCDRAM_SESSION_HH
