#include "fcdram/analyzer.hh"

#include <cassert>

#include "dram/openbitline.hh"
#include "fcdram/golden.hh"

namespace fcdram {

SuccessRateAnalyzer::SuccessRateAnalyzer(DramBender &bender,
                                         std::uint64_t seed)
    : bender_(bender), ops_(bender), rng_(seed)
{
}

NotTrialResult
SuccessRateAnalyzer::runNot(const NotTrialConfig &config)
{
    Chip &chip = bender_.chip();
    const GeometryConfig &geometry = chip.geometry();
    const RowAddress src = decomposeRow(geometry, config.srcGlobal);
    const RowAddress dst = decomposeRow(geometry, config.dstGlobal);
    assert(neighboringSubarrays(geometry, config.srcGlobal,
                                config.dstGlobal));

    NotTrialResult result;
    result.columns = sharedColumns(geometry, src.subarray, dst.subarray);

    // Discover the destination set once (deterministic per pair).
    const ActivationSets sets =
        chip.decoder().neighborActivation(src.localRow, dst.localRow);
    if (!sets.simultaneous && !sets.sequential)
        return result;
    for (const RowId local : sets.secondRows) {
        result.destinationRows.push_back(
            composeRow(geometry, dst.subarray, local));
    }
    result.cells = SuccessRateAccumulator(result.destinationRows.size() *
                                          result.columns.size());

    BitVector pattern(static_cast<std::size_t>(geometry.columns));
    for (int trial = 0; trial < config.trials; ++trial) {
        switch (config.pattern) {
          case PatternClass::Random:
            pattern.randomize(rng_);
            break;
          case PatternClass::AllOnes:
            pattern.fill(true);
            break;
          case PatternClass::AllZeros:
          case PatternClass::FixedOnes:
            pattern.fill(false);
            break;
        }
        // Source row gets the pattern; destination rows (and the
        // other rows of the source subarray's activation set) are
        // initialized with the *same* pattern so "retained" cells are
        // always counted as failures.
        bender_.writeRow(config.bank, config.srcGlobal, pattern);
        for (const RowId row : result.destinationRows)
            bender_.writeRow(config.bank, row, pattern);

        ops_.executeNot(config.bank, config.srcGlobal, config.dstGlobal);

        for (std::size_t r = 0; r < result.destinationRows.size(); ++r) {
            const BitVector readback =
                bender_.readRow(config.bank, result.destinationRows[r]);
            for (std::size_t c = 0; c < result.columns.size(); ++c) {
                const ColId col = result.columns[c];
                const bool expected = !pattern.get(col);
                result.cells.record(r * result.columns.size() + c,
                                    readback.get(col) == expected);
            }
        }
    }
    return result;
}

LogicTrialResult
SuccessRateAnalyzer::runLogic(const LogicTrialConfig &config)
{
    Chip &chip = bender_.chip();
    const GeometryConfig &geometry = chip.geometry();
    const RowAddress ref = decomposeRow(geometry, config.refGlobal);
    const RowAddress com = decomposeRow(geometry, config.comGlobal);
    assert(neighboringSubarrays(geometry, config.refGlobal,
                                config.comGlobal));

    LogicTrialResult result;
    const ActivationSets sets =
        chip.decoder().neighborActivation(ref.localRow, com.localRow);
    if (!sets.simultaneous || sets.nrf() != sets.nrl())
        return result;
    result.numInputs = sets.nrl();
    for (const RowId local : sets.firstRows) {
        result.referenceRows.push_back(
            composeRow(geometry, ref.subarray, local));
    }
    for (const RowId local : sets.secondRows) {
        result.computeRows.push_back(
            composeRow(geometry, com.subarray, local));
    }
    result.columns = sharedColumns(geometry, ref.subarray, com.subarray);
    const std::size_t cells =
        result.computeRows.size() * result.columns.size();
    result.computeCells = SuccessRateAccumulator(cells);
    result.referenceCells = SuccessRateAccumulator(cells);

    const bool and_family =
        config.op == BoolOp::And || config.op == BoolOp::Nand;
    const auto columns_total =
        static_cast<std::size_t>(geometry.columns);

    std::vector<BitVector> operands(
        result.computeRows.size(), BitVector(columns_total));

    for (int trial = 0; trial < config.trials; ++trial) {
        // Operand patterns.
        for (std::size_t i = 0; i < operands.size(); ++i) {
            switch (config.pattern) {
              case PatternClass::Random:
                operands[i].randomize(rng_);
                break;
              case PatternClass::AllOnes:
                operands[i].fill(true);
                break;
              case PatternClass::AllZeros:
                operands[i].fill(false);
                break;
              case PatternClass::FixedOnes:
                operands[i].fill(static_cast<int>(i) <
                                 config.fixedOnes);
                break;
            }
        }
        // Reference initialization happens every trial: the previous
        // operation overwrote the reference rows with NAND/NOR
        // results and consumed the Frac row.
        if (!ops_.initReference(config.bank,
                                and_family ? BoolOp::And : BoolOp::Or,
                                result.referenceRows)) {
            continue;
        }
        for (std::size_t i = 0; i < operands.size(); ++i) {
            bender_.writeRow(config.bank, result.computeRows[i],
                             operands[i]);
        }

        bender_.execute(ops_.buildDoubleAct(
            config.bank, config.refGlobal, config.comGlobal));

        const BitVector expected_com = and_family
                                           ? goldenAnd(operands)
                                           : goldenOr(operands);
        const BitVector expected_ref = ~expected_com;

        for (std::size_t r = 0; r < result.computeRows.size(); ++r) {
            const BitVector readback =
                bender_.readRow(config.bank, result.computeRows[r]);
            for (std::size_t c = 0; c < result.columns.size(); ++c) {
                const ColId col = result.columns[c];
                result.computeCells.record(
                    r * result.columns.size() + c,
                    readback.get(col) == expected_com.get(col));
            }
        }
        for (std::size_t r = 0; r < result.referenceRows.size(); ++r) {
            const BitVector readback =
                bender_.readRow(config.bank, result.referenceRows[r]);
            for (std::size_t c = 0; c < result.columns.size(); ++c) {
                const ColId col = result.columns[c];
                result.referenceCells.record(
                    r * result.columns.size() + c,
                    readback.get(col) == expected_ref.get(col));
            }
        }
    }
    return result;
}

} // namespace fcdram
