/**
 * @file
 * Reliable-cell masks: the paper restricts several experiments to
 * cells with >90% success (footnote 8), and any deployment of FCDRAM
 * operations needs the same machinery — identify the dependable
 * columns for a given operation and compute only there.
 */

#ifndef FCDRAM_FCDRAM_RELIABLEMASK_HH
#define FCDRAM_FCDRAM_RELIABLEMASK_HH

#include <vector>

#include "common/bitvector.hh"
#include "fcdram/analytic.hh"

namespace fcdram {

/**
 * Builds per-operation reliability masks for a chip from the
 * analytic model (profiling), mirroring what a deployment would
 * obtain from a measurement pass.
 */
class ReliableMask
{
  public:
    /**
     * @param chip Chip under test.
     * @param thresholdPercent Minimum per-cell success rate.
     */
    ReliableMask(const Chip &chip, double thresholdPercent = 90.0);

    /**
     * Mask over all columns for the NOT operation on a (src, dst)
     * pair: bit c set iff column c is shared with the destination
     * subarray AND every destination-row cell in that column meets
     * the threshold. Empty vector if the pair does not activate.
     */
    BitVector notMask(BankId bank, RowId srcGlobal, RowId dstGlobal,
                      const OpConditions &cond = OpConditions()) const;

    /**
     * Mask over all columns for an N:N logic op on a (ref, com)
     * pair; measured side selected by @p op.
     */
    BitVector logicMask(BankId bank, BoolOp op, RowId refGlobal,
                        RowId comGlobal,
                        const OpConditions &cond = OpConditions()) const;

    /** Fraction of set bits in a mask (0 if empty). */
    static double maskDensity(const BitVector &mask);

    double thresholdPercent() const { return thresholdPercent_; }

  private:
    const Chip &chip_;
    double thresholdPercent_;
};

} // namespace fcdram

#endif // FCDRAM_FCDRAM_RELIABLEMASK_HH
