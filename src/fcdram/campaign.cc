#include "fcdram/campaign.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "dram/address.hh"
#include "dram/openbitline.hh"

namespace fcdram {

namespace {

/** Destination-row counts characterized by Fig. 7 and friends. */
constexpr int kDestRowCounts[] = {1, 2, 4, 8, 16, 32};

/** Input counts characterized by Fig. 15 and friends. */
constexpr int kInputCounts[] = {2, 4, 8, 16};

/** The four logic operations. */
constexpr BoolOp kLogicOps[] = {BoolOp::And, BoolOp::Nand, BoolOp::Or,
                                BoolOp::Nor};

} // namespace

CampaignConfig::CampaignConfig()
{
    geometry = GeometryConfig::standard();
    geometry.columns = 128;
}

CampaignConfig
CampaignConfig::forTests()
{
    CampaignConfig config;
    config.geometry = GeometryConfig::standard();
    config.geometry.columns = 32;
    config.geometry.numBanks = 1;
    config.geometry.subarraysPerBank = 4;
    config.banksPerChip = 1;
    config.subarrayPairsPerBank = 2;
    config.pairSamplesPerConfig = 6;
    config.probesPerPair = 4000;
    config.analytic.trials = 2000;
    return config;
}

std::string
dieLabel(const ModuleSpec &spec)
{
    std::ostringstream oss;
    oss << (spec.manufacturer == Manufacturer::SkHynix ? "SKHynix"
            : spec.manufacturer == Manufacturer::Samsung ? "Samsung"
                                                         : "Micron")
        << "-" << spec.densityGbit << "Gb-" << spec.dieRevision;
    return oss.str();
}

Campaign::Campaign(const CampaignConfig &config) : config_(config)
{
    assert(config_.geometry.valid());
}

std::vector<ModuleSpec>
Campaign::skHynixFleet() const
{
    std::vector<ModuleSpec> fleet;
    for (const ModuleSpec &spec : table1Fleet())
        if (spec.manufacturer == Manufacturer::SkHynix)
            fleet.push_back(spec);
    return fleet;
}

std::vector<ModuleSpec>
Campaign::table1() const
{
    return table1Fleet();
}

void
Campaign::forEachChip(
    const std::vector<ModuleSpec> &fleet,
    const std::function<void(const ModuleSpec &, const Chip &,
                             std::uint64_t)> &visit)
{
    std::uint64_t module_index = 0;
    for (const ModuleSpec &spec : fleet) {
        for (int m = 0; m < spec.numModules; ++m) {
            const std::uint64_t seed =
                hashCombine(config_.seed, ++module_index);
            const Chip chip(spec.profile(), config_.geometry, seed);
            visit(spec, chip, seed);
        }
    }
}

std::vector<Campaign::PairContext>
Campaign::samplePairs(const Chip &chip, std::uint64_t seed) const
{
    std::vector<PairContext> contexts;
    Rng rng(hashCombine(seed, 0x5041ULL));
    const int banks = std::min(config_.banksPerChip, chip.numBanks());
    const int max_low = chip.geometry().subarraysPerBank - 1;
    for (int b = 0; b < banks; ++b) {
        for (int p = 0; p < config_.subarrayPairsPerBank; ++p) {
            PairContext context;
            context.bank = static_cast<BankId>(b);
            context.lowSubarray = static_cast<SubarrayId>(
                rng.below(static_cast<std::uint64_t>(max_low)));
            contexts.push_back(context);
        }
    }
    return contexts;
}

std::vector<std::pair<RowId, RowId>>
Campaign::findPairs(
    const Chip &chip, const PairContext &context,
    const std::function<bool(const ActivationSets &)> &predicate,
    int maxPairs, std::uint64_t seed) const
{
    std::vector<std::pair<RowId, RowId>> pairs;
    const GeometryConfig &geometry = chip.geometry();
    const auto rows = static_cast<RowId>(geometry.rowsPerSubarray);
    Rng rng(seed);
    for (int probe = 0; probe < config_.probesPerPair &&
                        static_cast<int>(pairs.size()) < maxPairs;
         ++probe) {
        const auto rf = static_cast<RowId>(rng.below(rows));
        const auto rl = static_cast<RowId>(rng.below(rows));
        const ActivationSets sets =
            chip.decoder().neighborActivation(rf, rl);
        if (!predicate(sets))
            continue;
        pairs.emplace_back(
            composeRow(geometry, context.lowSubarray, rf),
            composeRow(geometry, context.lowSubarray + 1, rl));
    }
    return pairs;
}

std::map<std::string, SampleSet>
Campaign::activationCoverage()
{
    std::map<std::string, SampleSet> coverage;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &, const Chip &chip,
                                    std::uint64_t seed) {
        const GeometryConfig &geometry = chip.geometry();
        const auto rows = static_cast<RowId>(geometry.rowsPerSubarray);
        for (const PairContext &context : samplePairs(chip, seed)) {
            (void)context;
            std::map<std::string, std::uint64_t> counts;
            Rng rng(hashCombine(seed, 0xC0FEULL + context.bank +
                                          context.lowSubarray));
            const int probes = config_.probesPerPair;
            for (int i = 0; i < probes; ++i) {
                const auto rf = static_cast<RowId>(rng.below(rows));
                const auto rl = static_cast<RowId>(rng.below(rows));
                const ActivationSets sets =
                    chip.decoder().neighborActivation(rf, rl);
                if (!sets.simultaneous)
                    continue;
                std::ostringstream oss;
                oss << sets.nrf() << ":" << sets.nrl();
                ++counts[oss.str()];
            }
            // Every known activation type contributes a sample per
            // (module, subarray pair) context, including zero
            // coverage; otherwise modules lacking a capability (e.g.
            // N:2N) would be silently dropped from its distribution.
            static const char *kKnownTypes[] = {
                "1:1", "1:2", "2:2", "2:4", "4:4",
                "4:8", "8:8", "8:16", "16:16", "16:32"};
            for (const char *type : kKnownTypes) {
                const auto it = counts.find(type);
                const double count =
                    it == counts.end()
                        ? 0.0
                        : static_cast<double>(it->second);
                coverage[type].add(100.0 * count /
                                   static_cast<double>(probes));
                if (it != counts.end())
                    counts.erase(it);
            }
            for (const auto &[type, count] : counts) {
                coverage[type].add(100.0 * static_cast<double>(count) /
                                   static_cast<double>(probes));
            }
        }
    });
    return coverage;
}

std::map<int, SampleSet>
Campaign::notVsDestRows(const OpConditions &cond)
{
    std::map<int, SampleSet> result;
    forEachChip(table1(), [&](const ModuleSpec &, const Chip &chip,
                              std::uint64_t seed) {
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            for (const int dest : kDestRowCounts) {
                const auto pairs = findPairs(
                    chip, context,
                    [dest](const ActivationSets &sets) {
                        return (sets.simultaneous || sets.sequential) &&
                               sets.nrl() == dest;
                    },
                    config_.pairSamplesPerConfig,
                    hashCombine(seed, 0x700 + dest + context.bank * 977 +
                                          context.lowSubarray * 131));
                for (const auto &[src, dst] : pairs) {
                    const auto samples = analyzer.notSamples(
                        context.bank, src, dst, cond);
                    for (const CellSample &sample : samples) {
                        result[dest].add(
                            analyzer.toPercent(sample.probability));
                    }
                }
            }
        }
    });
    return result;
}

std::map<std::string, SampleSet>
Campaign::notVsActivationType()
{
    std::map<std::string, SampleSet> result;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &, const Chip &chip,
                                    std::uint64_t seed) {
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            for (const int dest : kDestRowCounts) {
                const auto pairs = findPairs(
                    chip, context,
                    [dest](const ActivationSets &sets) {
                        return sets.simultaneous && sets.nrl() == dest;
                    },
                    config_.pairSamplesPerConfig,
                    hashCombine(seed, 0x800 + dest + context.bank * 977 +
                                          context.lowSubarray * 131));
                for (const auto &[src, dst] : pairs) {
                    const GeometryConfig &geometry = chip.geometry();
                    const RowAddress rf = decomposeRow(geometry, src);
                    const RowAddress rl = decomposeRow(geometry, dst);
                    const ActivationSets sets =
                        chip.decoder().neighborActivation(rf.localRow,
                                                          rl.localRow);
                    std::ostringstream oss;
                    oss << sets.nrf() << ":" << sets.nrl();
                    const auto samples = analyzer.notSamples(
                        context.bank, src, dst, OpConditions());
                    for (const CellSample &sample : samples) {
                        result[oss.str()].add(
                            analyzer.toPercent(sample.probability));
                    }
                }
            }
        }
    });
    return result;
}

RegionHeatmap
Campaign::notRegionHeatmap()
{
    RegionHeatmap heatmap{};
    std::array<std::array<SampleSet, 3>, 3> buckets;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &, const Chip &chip,
                                    std::uint64_t seed) {
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            for (const int dest : kDestRowCounts) {
                const auto pairs = findPairs(
                    chip, context,
                    [dest](const ActivationSets &sets) {
                        return sets.simultaneous && sets.nrl() == dest;
                    },
                    config_.pairSamplesPerConfig,
                    hashCombine(seed, 0x900 + dest + context.bank * 977 +
                                          context.lowSubarray * 131));
                for (const auto &[src, dst] : pairs) {
                    const auto samples = analyzer.notSamples(
                        context.bank, src, dst, OpConditions());
                    for (const CellSample &sample : samples) {
                        buckets[static_cast<int>(sample.otherRegion)]
                               [static_cast<int>(sample.ownRegion)]
                                   .add(100.0 * sample.probability);
                    }
                }
            }
        }
    });
    for (int s = 0; s < 3; ++s)
        for (int d = 0; d < 3; ++d)
            heatmap[s][d] = buckets[s][d].empty()
                                ? 0.0
                                : buckets[s][d].mean();
    return heatmap;
}

std::map<int, std::map<int, double>>
Campaign::notVsTemperature(const std::vector<int> &temperatures)
{
    std::map<int, std::map<int, SampleSet>> buckets;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &, const Chip &chip,
                                    std::uint64_t seed) {
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            for (const int dest : kDestRowCounts) {
                const auto pairs = findPairs(
                    chip, context,
                    [dest](const ActivationSets &sets) {
                        return sets.simultaneous && sets.nrl() == dest;
                    },
                    config_.pairSamplesPerConfig,
                    hashCombine(seed, 0xA00 + dest + context.bank * 977 +
                                          context.lowSubarray * 131));
                for (const auto &[src, dst] : pairs) {
                    const auto base = analyzer.notSamples(
                        context.bank, src, dst, OpConditions());
                    for (const int temp : temperatures) {
                        OpConditions cond;
                        cond.temperature = temp;
                        const auto samples = analyzer.notSamples(
                            context.bank, src, dst, cond);
                        for (std::size_t i = 0; i < samples.size();
                             ++i) {
                            // Only cells with >90% success at the
                            // 50 C baseline are tracked (paper
                            // footnote 8).
                            if (base[i].probability <= 0.9)
                                continue;
                            buckets[dest][temp].add(
                                100.0 * samples[i].probability);
                        }
                    }
                }
            }
        }
    });
    std::map<int, std::map<int, double>> result;
    for (const auto &[dest, by_temp] : buckets)
        for (const auto &[temp, set] : by_temp)
            result[dest][temp] = set.empty() ? 0.0 : set.mean();
    return result;
}

std::map<std::uint32_t, std::map<int, SampleSet>>
Campaign::notVsSpeed()
{
    std::map<std::uint32_t, std::map<int, SampleSet>> result;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &spec,
                                    const Chip &chip,
                                    std::uint64_t seed) {
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            for (const int dest : kDestRowCounts) {
                const auto pairs = findPairs(
                    chip, context,
                    [dest](const ActivationSets &sets) {
                        return sets.simultaneous && sets.nrl() == dest;
                    },
                    config_.pairSamplesPerConfig,
                    hashCombine(seed, 0xB00 + dest + context.bank * 977 +
                                          context.lowSubarray * 131));
                for (const auto &[src, dst] : pairs) {
                    const auto samples = analyzer.notSamples(
                        context.bank, src, dst, OpConditions());
                    for (const CellSample &sample : samples) {
                        result[spec.speedMt][dest].add(
                            analyzer.toPercent(sample.probability));
                    }
                }
            }
        }
    });
    return result;
}

std::vector<std::pair<std::string, SampleSet>>
Campaign::notByDie()
{
    std::map<std::string, SampleSet> by_die;
    forEachChip(table1(), [&](const ModuleSpec &spec, const Chip &chip,
                              std::uint64_t seed) {
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            const auto pairs = findPairs(
                chip, context,
                [](const ActivationSets &sets) {
                    return (sets.simultaneous || sets.sequential) &&
                           sets.nrl() == 1;
                },
                config_.pairSamplesPerConfig,
                hashCombine(seed, 0xC00 + context.bank * 977 +
                                      context.lowSubarray * 131));
            for (const auto &[src, dst] : pairs) {
                const auto samples = analyzer.notSamples(
                    context.bank, src, dst, OpConditions());
                for (const CellSample &sample : samples) {
                    by_die[dieLabel(spec)].add(
                        analyzer.toPercent(sample.probability));
                }
            }
        }
    });
    return {by_die.begin(), by_die.end()};
}

std::map<BoolOp, std::map<int, SampleSet>>
Campaign::logicVsInputs()
{
    std::map<BoolOp, std::map<int, SampleSet>> result;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &, const Chip &chip,
                                    std::uint64_t seed) {
        if (!chip.profile().supportsLogicOps())
            return;
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            for (const int inputs : kInputCounts) {
                if (inputs > chip.profile().maxLogicInputs())
                    continue;
                const auto pairs = findPairs(
                    chip, context,
                    [inputs](const ActivationSets &sets) {
                        return sets.simultaneous &&
                               sets.nrf() == inputs &&
                               sets.nrl() == inputs;
                    },
                    config_.pairSamplesPerConfig,
                    hashCombine(seed, 0xD00 + inputs +
                                          context.bank * 977 +
                                          context.lowSubarray * 131));
                for (const auto &[ref, com] : pairs) {
                    for (const BoolOp op : kLogicOps) {
                        const auto samples = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        for (const CellSample &sample : samples) {
                            result[op][inputs].add(
                                analyzer.toPercent(sample.probability));
                        }
                    }
                }
            }
        }
    });
    return result;
}

std::map<int, double>
Campaign::logicVsOnes(BoolOp op, int numInputs)
{
    std::map<int, SampleSet> buckets;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &, const Chip &chip,
                                    std::uint64_t seed) {
        if (!chip.profile().supportsLogicOps() ||
            numInputs > chip.profile().maxLogicInputs()) {
            return;
        }
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            const auto pairs = findPairs(
                chip, context,
                [numInputs](const ActivationSets &sets) {
                    return sets.simultaneous &&
                           sets.nrf() == numInputs &&
                           sets.nrl() == numInputs;
                },
                config_.pairSamplesPerConfig,
                hashCombine(seed, 0xE00 + numInputs +
                                      context.bank * 977 +
                                      context.lowSubarray * 131));
            for (const auto &[ref, com] : pairs) {
                for (int ones = 0; ones <= numInputs; ++ones) {
                    const auto samples = analyzer.logicSamples(
                        context.bank, op, ref, com, OpConditions(),
                        PatternClass::FixedOnes, ones);
                    for (const CellSample &sample : samples)
                        buckets[ones].add(100.0 * sample.probability);
                }
            }
        }
    });
    std::map<int, double> result;
    for (const auto &[ones, set] : buckets)
        result[ones] = set.empty() ? 0.0 : set.mean();
    return result;
}

std::map<BoolOp, RegionHeatmap>
Campaign::logicRegionHeatmap()
{
    std::map<BoolOp, std::array<std::array<SampleSet, 3>, 3>> buckets;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &, const Chip &chip,
                                    std::uint64_t seed) {
        if (!chip.profile().supportsLogicOps())
            return;
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            for (const int inputs : kInputCounts) {
                if (inputs > chip.profile().maxLogicInputs())
                    continue;
                const auto pairs = findPairs(
                    chip, context,
                    [inputs](const ActivationSets &sets) {
                        return sets.simultaneous &&
                               sets.nrf() == inputs &&
                               sets.nrl() == inputs;
                    },
                    config_.pairSamplesPerConfig,
                    hashCombine(seed, 0xF00 + inputs +
                                          context.bank * 977 +
                                          context.lowSubarray * 131));
                for (const auto &[ref, com] : pairs) {
                    for (const BoolOp op : kLogicOps) {
                        const auto samples = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        for (const CellSample &sample : samples) {
                            const int own =
                                static_cast<int>(sample.ownRegion);
                            const int other =
                                static_cast<int>(sample.otherRegion);
                            // Index convention: [compute][reference].
                            const bool own_is_ref = isInvertedOp(op);
                            const int com_idx =
                                own_is_ref ? other : own;
                            const int ref_idx =
                                own_is_ref ? own : other;
                            buckets[op][com_idx][ref_idx].add(
                                100.0 * sample.probability);
                        }
                    }
                }
            }
        }
    });
    std::map<BoolOp, RegionHeatmap> result;
    for (const BoolOp op : kLogicOps) {
        RegionHeatmap heatmap{};
        for (int c = 0; c < 3; ++c) {
            for (int r = 0; r < 3; ++r) {
                const SampleSet &set = buckets[op][c][r];
                heatmap[c][r] = set.empty() ? 0.0 : set.mean();
            }
        }
        result[op] = heatmap;
    }
    return result;
}

std::map<BoolOp, std::map<int, std::pair<SampleSet, SampleSet>>>
Campaign::logicDataPattern()
{
    std::map<BoolOp, std::map<int, std::pair<SampleSet, SampleSet>>>
        result;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &, const Chip &chip,
                                    std::uint64_t seed) {
        if (!chip.profile().supportsLogicOps())
            return;
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            for (const int inputs : kInputCounts) {
                if (inputs > chip.profile().maxLogicInputs())
                    continue;
                const auto pairs = findPairs(
                    chip, context,
                    [inputs](const ActivationSets &sets) {
                        return sets.simultaneous &&
                               sets.nrf() == inputs &&
                               sets.nrl() == inputs;
                    },
                    config_.pairSamplesPerConfig,
                    hashCombine(seed, 0x1100 + inputs +
                                          context.bank * 977 +
                                          context.lowSubarray * 131));
                for (const auto &[ref, com] : pairs) {
                    for (const BoolOp op : kLogicOps) {
                        const auto fixed = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::AllOnes);
                        const auto random = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        auto &bucket = result[op][inputs];
                        for (const CellSample &sample : fixed) {
                            bucket.first.add(
                                analyzer.toPercent(sample.probability));
                        }
                        for (const CellSample &sample : random) {
                            bucket.second.add(
                                analyzer.toPercent(sample.probability));
                        }
                    }
                }
            }
        }
    });
    return result;
}

std::map<BoolOp, std::map<int, std::map<int, double>>>
Campaign::logicVsTemperature(const std::vector<int> &temperatures)
{
    std::map<BoolOp, std::map<int, std::map<int, SampleSet>>> buckets;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &, const Chip &chip,
                                    std::uint64_t seed) {
        if (!chip.profile().supportsLogicOps())
            return;
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            for (const int inputs : kInputCounts) {
                if (inputs > chip.profile().maxLogicInputs())
                    continue;
                const auto pairs = findPairs(
                    chip, context,
                    [inputs](const ActivationSets &sets) {
                        return sets.simultaneous &&
                               sets.nrf() == inputs &&
                               sets.nrl() == inputs;
                    },
                    config_.pairSamplesPerConfig,
                    hashCombine(seed, 0x1200 + inputs +
                                          context.bank * 977 +
                                          context.lowSubarray * 131));
                for (const auto &[ref, com] : pairs) {
                    for (const BoolOp op : kLogicOps) {
                        const auto base = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        for (const int temp : temperatures) {
                            OpConditions cond;
                            cond.temperature = temp;
                            const auto samples = analyzer.logicSamples(
                                context.bank, op, ref, com, cond,
                                PatternClass::Random);
                            for (std::size_t i = 0; i < samples.size();
                                 ++i) {
                                if (base[i].probability <= 0.9)
                                    continue;
                                buckets[op][inputs][temp].add(
                                    100.0 * samples[i].probability);
                            }
                        }
                    }
                }
            }
        }
    });
    std::map<BoolOp, std::map<int, std::map<int, double>>> result;
    for (const auto &[op, by_inputs] : buckets)
        for (const auto &[inputs, by_temp] : by_inputs)
            for (const auto &[temp, set] : by_temp)
                result[op][inputs][temp] =
                    set.empty() ? 0.0 : set.mean();
    return result;
}

std::map<BoolOp, std::map<std::uint32_t, std::map<int, SampleSet>>>
Campaign::logicVsSpeed()
{
    std::map<BoolOp, std::map<std::uint32_t, std::map<int, SampleSet>>>
        result;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &spec,
                                    const Chip &chip,
                                    std::uint64_t seed) {
        if (!chip.profile().supportsLogicOps())
            return;
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            for (const int inputs : kInputCounts) {
                if (inputs > chip.profile().maxLogicInputs())
                    continue;
                const auto pairs = findPairs(
                    chip, context,
                    [inputs](const ActivationSets &sets) {
                        return sets.simultaneous &&
                               sets.nrf() == inputs &&
                               sets.nrl() == inputs;
                    },
                    config_.pairSamplesPerConfig,
                    hashCombine(seed, 0x1300 + inputs +
                                          context.bank * 977 +
                                          context.lowSubarray * 131));
                for (const auto &[ref, com] : pairs) {
                    for (const BoolOp op : kLogicOps) {
                        const auto samples = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        for (const CellSample &sample : samples) {
                            result[op][spec.speedMt][inputs].add(
                                analyzer.toPercent(sample.probability));
                        }
                    }
                }
            }
        }
    });
    return result;
}

std::map<std::string, std::map<BoolOp, SampleSet>>
Campaign::logicByDie()
{
    std::map<std::string, std::map<BoolOp, SampleSet>> result;
    forEachChip(skHynixFleet(), [&](const ModuleSpec &spec,
                                    const Chip &chip,
                                    std::uint64_t seed) {
        if (!chip.profile().supportsLogicOps())
            return;
        AnalyticAnalyzer analyzer(chip, config_.analytic, seed);
        for (const PairContext &context : samplePairs(chip, seed)) {
            for (const int inputs : kInputCounts) {
                if (inputs > chip.profile().maxLogicInputs())
                    continue;
                const auto pairs = findPairs(
                    chip, context,
                    [inputs](const ActivationSets &sets) {
                        return sets.simultaneous &&
                               sets.nrf() == inputs &&
                               sets.nrl() == inputs;
                    },
                    config_.pairSamplesPerConfig,
                    hashCombine(seed, 0x1400 + inputs +
                                          context.bank * 977 +
                                          context.lowSubarray * 131));
                for (const auto &[ref, com] : pairs) {
                    for (const BoolOp op : kLogicOps) {
                        const auto samples = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        for (const CellSample &sample : samples) {
                            result[dieLabel(spec)][op].add(
                                analyzer.toPercent(sample.probability));
                        }
                    }
                }
            }
        }
    });
    return result;
}

} // namespace fcdram
