#include "fcdram/campaign.hh"

#include <cassert>
#include <sstream>

#include "dram/address.hh"
#include "dram/openbitline.hh"

namespace fcdram {

namespace {

/** Destination-row counts characterized by Fig. 7 and friends. */
constexpr int kDestRowCounts[] = {1, 2, 4, 8, 16, 32};

/** Input counts characterized by Fig. 15 and friends. */
constexpr int kInputCounts[] = {2, 4, 8, 16};

/** The four logic operations. */
constexpr BoolOp kLogicOps[] = {BoolOp::And, BoolOp::Nand, BoolOp::Or,
                                BoolOp::Nor};

using View = FleetSession::ModuleView;
using Fleet = FleetSession::Fleet;

/**
 * Shared inner loop of the NOT figures: visit every qualifying
 * (source, destination) pair per (context, destination-row count).
 */
template <class Fn>
void
forEachNotPair(const FleetSession &session, const View &m,
               PairQuery::Activation activation, Fn &&fn)
{
    for (const PairContext &context : m.contexts) {
        for (const int dest : kDestRowCounts) {
            const PairQuery query =
                activation == PairQuery::Activation::Any
                    ? PairQuery::anyWithDest(dest)
                    : PairQuery::simultaneousWithDest(dest);
            for (const auto &[src, dst] :
                 session.qualifyingPairs(m.module, context, query))
                fn(context, dest, src, dst);
        }
    }
}

/**
 * Shared inner loop of the logic figures: visit every qualifying N:N
 * (reference, compute) pair per (context, input count) supported by
 * the module's design.
 */
template <class Fn>
void
forEachSquarePair(const FleetSession &session, const View &m,
                  Fn &&fn)
{
    for (const PairContext &context : m.contexts) {
        for (const int inputs : kInputCounts) {
            if (inputs > m.chip.profile().maxLogicInputs())
                continue;
            for (const auto &[ref, com] : session.qualifyingPairs(
                     m.module, context, PairQuery::square(inputs)))
                fn(context, inputs, ref, com);
        }
    }
}

} // namespace

std::string
dieLabel(const ModuleSpec &spec)
{
    std::ostringstream oss;
    oss << (spec.manufacturer == Manufacturer::SkHynix ? "SKHynix"
            : spec.manufacturer == Manufacturer::Samsung ? "Samsung"
                                                         : "Micron")
        << "-" << spec.densityGbit << "Gb-" << spec.dieRevision;
    return oss.str();
}

Campaign::Campaign(const CampaignConfig &config)
    : session_(std::make_shared<FleetSession>(config))
{
}

Campaign::Campaign(std::shared_ptr<FleetSession> session)
    : session_(std::move(session))
{
    assert(session_ != nullptr);
}

const std::vector<ModuleSpec> &
Campaign::skHynixFleet() const
{
    return session_->specs(Fleet::SkHynix);
}

const std::vector<ModuleSpec> &
Campaign::table1() const
{
    return session_->specs(Fleet::Table1);
}

std::map<std::string, SampleSet>
Campaign::activationCoverage()
{
    using Accum = std::map<std::string, SampleSet>;
    return session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &coverage) {
            const GeometryConfig &geometry = m.chip.geometry();
            const auto rows =
                static_cast<RowId>(geometry.rowsPerSubarray);
            for (const PairContext &context : m.contexts) {
                std::map<std::string, std::uint64_t> counts;
                Rng rng(hashCombine(m.seed, 0xC0FEULL + context.bank +
                                                context.lowSubarray));
                const int probes = config().probesPerPair;
                for (int i = 0; i < probes; ++i) {
                    const auto rf = static_cast<RowId>(rng.below(rows));
                    const auto rl = static_cast<RowId>(rng.below(rows));
                    const ActivationSets sets =
                        m.chip.decoder().neighborActivation(rf, rl);
                    if (!sets.simultaneous)
                        continue;
                    std::ostringstream oss;
                    oss << sets.nrf() << ":" << sets.nrl();
                    ++counts[oss.str()];
                }
                // Every known activation type contributes a sample per
                // (module, subarray pair) context, including zero
                // coverage; otherwise modules lacking a capability
                // (e.g. N:2N) would be silently dropped from its
                // distribution.
                static const char *kKnownTypes[] = {
                    "1:1", "1:2", "2:2", "2:4", "4:4",
                    "4:8", "8:8", "8:16", "16:16", "16:32"};
                for (const char *type : kKnownTypes) {
                    const auto it = counts.find(type);
                    const double count =
                        it == counts.end()
                            ? 0.0
                            : static_cast<double>(it->second);
                    coverage[type].add(100.0 * count /
                                       static_cast<double>(probes));
                    if (it != counts.end())
                        counts.erase(it);
                }
                for (const auto &[type, count] : counts) {
                    coverage[type].add(100.0 *
                                       static_cast<double>(count) /
                                       static_cast<double>(probes));
                }
            }
        });
}

std::map<int, SampleSet>
Campaign::notVsDestRows(const OpConditions &cond)
{
    using Accum = std::map<int, SampleSet>;
    return session_->runOverFleet<Accum>(
        Fleet::Table1, [&](const View &m, Accum &result) {
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            forEachNotPair(
                *session_, m, PairQuery::Activation::Any,
                [&](const PairContext &context, int dest, RowId src,
                    RowId dst) {
                    for (const CellSample &sample : analyzer.notSamples(
                             context.bank, src, dst, cond)) {
                        result[dest].add(
                            analyzer.toPercent(sample.probability));
                    }
                });
        });
}

std::map<std::string, SampleSet>
Campaign::notVsActivationType()
{
    using Accum = std::map<std::string, SampleSet>;
    return session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &result) {
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            forEachNotPair(
                *session_, m, PairQuery::Activation::Simultaneous,
                [&](const PairContext &context, int, RowId src,
                    RowId dst) {
                    const GeometryConfig &geometry = m.chip.geometry();
                    const RowAddress rf = decomposeRow(geometry, src);
                    const RowAddress rl = decomposeRow(geometry, dst);
                    const ActivationSets sets =
                        m.chip.decoder().neighborActivation(
                            rf.localRow, rl.localRow);
                    std::ostringstream oss;
                    oss << sets.nrf() << ":" << sets.nrl();
                    for (const CellSample &sample : analyzer.notSamples(
                             context.bank, src, dst, OpConditions())) {
                        result[oss.str()].add(
                            analyzer.toPercent(sample.probability));
                    }
                });
        });
}

RegionHeatmap
Campaign::notRegionHeatmap()
{
    using Accum = std::array<std::array<SampleSet, 3>, 3>;
    const Accum buckets = session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &out) {
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            forEachNotPair(
                *session_, m, PairQuery::Activation::Simultaneous,
                [&](const PairContext &context, int, RowId src,
                    RowId dst) {
                    for (const CellSample &sample : analyzer.notSamples(
                             context.bank, src, dst, OpConditions())) {
                        out[static_cast<int>(sample.otherRegion)]
                           [static_cast<int>(sample.ownRegion)]
                               .add(100.0 * sample.probability);
                    }
                });
        });
    RegionHeatmap heatmap{};
    for (int s = 0; s < 3; ++s)
        for (int d = 0; d < 3; ++d)
            heatmap[s][d] = buckets[s][d].empty()
                                ? 0.0
                                : buckets[s][d].mean();
    return heatmap;
}

std::map<int, std::map<int, double>>
Campaign::notVsTemperature(const std::vector<int> &temperatures)
{
    using Accum = std::map<int, std::map<int, SampleSet>>;
    const Accum buckets = session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &out) {
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            forEachNotPair(
                *session_, m, PairQuery::Activation::Simultaneous,
                [&](const PairContext &context, int dest, RowId src,
                    RowId dst) {
                    const auto base = analyzer.notSamples(
                        context.bank, src, dst, OpConditions());
                    for (const int temp : temperatures) {
                        OpConditions cond;
                        cond.temperature = temp;
                        const auto samples = analyzer.notSamples(
                            context.bank, src, dst, cond);
                        for (std::size_t i = 0; i < samples.size();
                             ++i) {
                            // Only cells with >90% success at the
                            // 50 C baseline are tracked (paper
                            // footnote 8).
                            if (base[i].probability <= 0.9)
                                continue;
                            out[dest][temp].add(
                                100.0 * samples[i].probability);
                        }
                    }
                });
        });
    std::map<int, std::map<int, double>> result;
    for (const auto &[dest, by_temp] : buckets)
        for (const auto &[temp, set] : by_temp)
            result[dest][temp] = set.empty() ? 0.0 : set.mean();
    return result;
}

std::map<std::uint32_t, std::map<int, SampleSet>>
Campaign::notVsSpeed()
{
    using Accum = std::map<std::uint32_t, std::map<int, SampleSet>>;
    return session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &result) {
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            forEachNotPair(
                *session_, m, PairQuery::Activation::Simultaneous,
                [&](const PairContext &context, int dest, RowId src,
                    RowId dst) {
                    for (const CellSample &sample : analyzer.notSamples(
                             context.bank, src, dst, OpConditions())) {
                        result[m.spec.speedMt][dest].add(
                            analyzer.toPercent(sample.probability));
                    }
                });
        });
}

std::vector<std::pair<std::string, SampleSet>>
Campaign::notByDie()
{
    using Accum = std::map<std::string, SampleSet>;
    const Accum by_die = session_->runOverFleet<Accum>(
        Fleet::Table1, [&](const View &m, Accum &out) {
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            for (const PairContext &context : m.contexts) {
                for (const auto &[src, dst] : session_->qualifyingPairs(
                         m.module, context, PairQuery::anyWithDest(1))) {
                    for (const CellSample &sample : analyzer.notSamples(
                             context.bank, src, dst, OpConditions())) {
                        out[dieLabel(m.spec)].add(
                            analyzer.toPercent(sample.probability));
                    }
                }
            }
        });
    return {by_die.begin(), by_die.end()};
}

std::map<BoolOp, std::map<int, SampleSet>>
Campaign::logicVsInputs()
{
    using Accum = std::map<BoolOp, std::map<int, SampleSet>>;
    return session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &result) {
            if (!m.chip.profile().supportsLogicOps())
                return;
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            forEachSquarePair(
                *session_, m,
                [&](const PairContext &context, int inputs, RowId ref,
                    RowId com) {
                    for (const BoolOp op : kLogicOps) {
                        const auto samples = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        for (const CellSample &sample : samples) {
                            result[op][inputs].add(
                                analyzer.toPercent(sample.probability));
                        }
                    }
                });
        });
}

std::map<int, double>
Campaign::logicVsOnes(BoolOp op, int numInputs)
{
    using Accum = std::map<int, SampleSet>;
    const Accum buckets = session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &out) {
            if (!m.chip.profile().supportsLogicOps() ||
                numInputs > m.chip.profile().maxLogicInputs()) {
                return;
            }
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            for (const PairContext &context : m.contexts) {
                for (const auto &[ref, com] : session_->qualifyingPairs(
                         m.module, context,
                         PairQuery::square(numInputs))) {
                    for (int ones = 0; ones <= numInputs; ++ones) {
                        const auto samples = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::FixedOnes, ones);
                        for (const CellSample &sample : samples)
                            out[ones].add(100.0 * sample.probability);
                    }
                }
            }
        });
    std::map<int, double> result;
    for (const auto &[ones, set] : buckets)
        result[ones] = set.empty() ? 0.0 : set.mean();
    return result;
}

std::map<BoolOp, RegionHeatmap>
Campaign::logicRegionHeatmap()
{
    using Accum =
        std::map<BoolOp, std::array<std::array<SampleSet, 3>, 3>>;
    const Accum buckets = session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &out) {
            if (!m.chip.profile().supportsLogicOps())
                return;
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            forEachSquarePair(
                *session_, m,
                [&](const PairContext &context, int, RowId ref,
                    RowId com) {
                    for (const BoolOp op : kLogicOps) {
                        const auto samples = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        for (const CellSample &sample : samples) {
                            const int own =
                                static_cast<int>(sample.ownRegion);
                            const int other =
                                static_cast<int>(sample.otherRegion);
                            // Index convention: [compute][reference].
                            const bool own_is_ref = isInvertedOp(op);
                            const int com_idx =
                                own_is_ref ? other : own;
                            const int ref_idx =
                                own_is_ref ? own : other;
                            out[op][com_idx][ref_idx].add(
                                100.0 * sample.probability);
                        }
                    }
                });
        });
    std::map<BoolOp, RegionHeatmap> result;
    for (const BoolOp op : kLogicOps) {
        RegionHeatmap heatmap{};
        const auto it = buckets.find(op);
        for (int c = 0; c < 3; ++c) {
            for (int r = 0; r < 3; ++r) {
                if (it == buckets.end() || it->second[c][r].empty())
                    heatmap[c][r] = 0.0;
                else
                    heatmap[c][r] = it->second[c][r].mean();
            }
        }
        result[op] = heatmap;
    }
    return result;
}

std::map<BoolOp, std::map<int, std::pair<SampleSet, SampleSet>>>
Campaign::logicDataPattern()
{
    using Accum =
        std::map<BoolOp, std::map<int, std::pair<SampleSet, SampleSet>>>;
    return session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &result) {
            if (!m.chip.profile().supportsLogicOps())
                return;
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            forEachSquarePair(
                *session_, m,
                [&](const PairContext &context, int inputs, RowId ref,
                    RowId com) {
                    for (const BoolOp op : kLogicOps) {
                        const auto fixed = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::AllOnes);
                        const auto random = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        auto &bucket = result[op][inputs];
                        for (const CellSample &sample : fixed) {
                            bucket.first.add(
                                analyzer.toPercent(sample.probability));
                        }
                        for (const CellSample &sample : random) {
                            bucket.second.add(
                                analyzer.toPercent(sample.probability));
                        }
                    }
                });
        });
}

std::map<BoolOp, std::map<int, std::map<int, double>>>
Campaign::logicVsTemperature(const std::vector<int> &temperatures)
{
    using Accum =
        std::map<BoolOp, std::map<int, std::map<int, SampleSet>>>;
    const Accum buckets = session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &out) {
            if (!m.chip.profile().supportsLogicOps())
                return;
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            forEachSquarePair(
                *session_, m,
                [&](const PairContext &context, int inputs, RowId ref,
                    RowId com) {
                    for (const BoolOp op : kLogicOps) {
                        const auto base = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        for (const int temp : temperatures) {
                            OpConditions cond;
                            cond.temperature = temp;
                            const auto samples = analyzer.logicSamples(
                                context.bank, op, ref, com, cond,
                                PatternClass::Random);
                            for (std::size_t i = 0; i < samples.size();
                                 ++i) {
                                if (base[i].probability <= 0.9)
                                    continue;
                                out[op][inputs][temp].add(
                                    100.0 * samples[i].probability);
                            }
                        }
                    }
                });
        });
    std::map<BoolOp, std::map<int, std::map<int, double>>> result;
    for (const auto &[op, by_inputs] : buckets)
        for (const auto &[inputs, by_temp] : by_inputs)
            for (const auto &[temp, set] : by_temp)
                result[op][inputs][temp] =
                    set.empty() ? 0.0 : set.mean();
    return result;
}

std::map<BoolOp, std::map<std::uint32_t, std::map<int, SampleSet>>>
Campaign::logicVsSpeed()
{
    using Accum =
        std::map<BoolOp,
                 std::map<std::uint32_t, std::map<int, SampleSet>>>;
    return session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &result) {
            if (!m.chip.profile().supportsLogicOps())
                return;
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            forEachSquarePair(
                *session_, m,
                [&](const PairContext &context, int inputs, RowId ref,
                    RowId com) {
                    for (const BoolOp op : kLogicOps) {
                        const auto samples = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        for (const CellSample &sample : samples) {
                            result[op][m.spec.speedMt][inputs].add(
                                analyzer.toPercent(sample.probability));
                        }
                    }
                });
        });
}

std::map<std::string, std::map<BoolOp, SampleSet>>
Campaign::logicByDie()
{
    using Accum = std::map<std::string, std::map<BoolOp, SampleSet>>;
    return session_->runOverFleet<Accum>(
        Fleet::SkHynix, [&](const View &m, Accum &result) {
            if (!m.chip.profile().supportsLogicOps())
                return;
            AnalyticAnalyzer analyzer(m.chip, config().analytic,
                                      m.seed);
            forEachSquarePair(
                *session_, m,
                [&](const PairContext &context, int, RowId ref,
                    RowId com) {
                    for (const BoolOp op : kLogicOps) {
                        const auto samples = analyzer.logicSamples(
                            context.bank, op, ref, com, OpConditions(),
                            PatternClass::Random);
                        for (const CellSample &sample : samples) {
                            result[dieLabel(m.spec)][op].add(
                                analyzer.toPercent(sample.probability));
                        }
                    }
                });
        });
}

} // namespace fcdram
