#include "fcdram/roworder.hh"

#include <algorithm>
#include <cassert>

#include "dram/address.hh"

namespace fcdram {

int
RowOrder::positionOf(RowId localRow) const
{
    for (std::size_t i = 0; i < physicalOrder.size(); ++i)
        if (physicalOrder[i] == localRow)
            return static_cast<int>(i);
    return -1;
}

Region
RowOrder::regionFor(RowId localRow, bool lowerStripe) const
{
    const int position = positionOf(localRow);
    assert(position >= 0);
    const int rows = static_cast<int>(physicalOrder.size());
    const int distance =
        lowerStripe ? rows - 1 - position : position;
    const int third = rows / 3;
    if (distance < third)
        return Region::Close;
    if (distance < 2 * third)
        return Region::Middle;
    return Region::Far;
}

RowOrderMapper::RowOrderMapper(DramBender &bender,
                               std::uint64_t hammerCount)
    : bender_(bender), hammerCount_(hammerCount)
{
}

std::vector<RowId>
RowOrderMapper::neighborsOf(BankId bank, SubarrayId subarray,
                            RowId aggressorLocal)
{
    const GeometryConfig &geometry = bender_.chip().geometry();
    const auto rows = static_cast<RowId>(geometry.rowsPerSubarray);
    BitVector ones(static_cast<std::size_t>(geometry.columns), true);
    for (RowId local = 0; local < rows; ++local) {
        bender_.writeRow(bank, composeRow(geometry, subarray, local),
                         ones);
    }
    bender_.hammerRow(
        bank, composeRow(geometry, subarray, aggressorLocal),
        hammerCount_);
    std::vector<RowId> neighbors;
    for (RowId local = 0; local < rows; ++local) {
        if (local == aggressorLocal)
            continue;
        const BitVector readback = bender_.readRow(
            bank, composeRow(geometry, subarray, local));
        // A handful of flips marks a physically adjacent victim.
        if (readback.hammingDistance(ones) >
            readback.size() / 32) {
            neighbors.push_back(local);
        }
    }
    return neighbors;
}

RowOrder
RowOrderMapper::mapSubarray(BankId bank, SubarrayId subarray)
{
    const GeometryConfig &geometry = bender_.chip().geometry();
    const auto rows = static_cast<RowId>(geometry.rowsPerSubarray);

    std::vector<std::vector<RowId>> adjacency(rows);
    std::vector<RowId> edges;
    for (RowId local = 0; local < rows; ++local) {
        adjacency[local] = neighborsOf(bank, subarray, local);
        if (adjacency[local].size() == 1)
            edges.push_back(local);
    }

    RowOrder order;
    if (edges.empty())
        return order;
    // Orientation is ambiguous from disturbance data alone (both
    // edges look alike); start from the lower-numbered edge row for
    // determinism. Callers comparing against ground truth must accept
    // the reversed order too.
    std::sort(edges.begin(), edges.end());
    RowId current = edges.front();
    RowId previous = current; // Sentinel: no predecessor yet.
    order.physicalOrder.push_back(current);
    while (order.physicalOrder.size() < rows) {
        bool found = false;
        for (const RowId candidate : adjacency[current]) {
            if (candidate != previous) {
                previous = current;
                current = candidate;
                found = true;
                break;
            }
        }
        if (!found) {
            // Degenerate adjacency (noise): bail out with a partial
            // order; callers treat short orders as a failed probe.
            break;
        }
        order.physicalOrder.push_back(current);
    }
    return order;
}

} // namespace fcdram
