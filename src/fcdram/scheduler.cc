#include "fcdram/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hh"

namespace fcdram {

Scheduler::Scheduler(int workers) : workers_(workers)
{
    if (workers_ <= 0) {
        const unsigned hardware = std::thread::hardware_concurrency();
        workers_ = hardware == 0 ? 1 : static_cast<int>(hardware);
    }
}

void
Scheduler::run(std::size_t numTasks,
               const std::function<void(std::size_t)> &task) const
{
    if (numTasks == 0)
        return;
    const std::size_t pool =
        std::min<std::size_t>(static_cast<std::size_t>(workers_),
                              numTasks);
    if (pool <= 1) {
        for (std::size_t i = 0; i < numTasks; ++i)
            task(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorMutex;
    const auto worker = [&] {
        for (;;) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= numTasks)
                return;
            try {
                task(index);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t)
        threads.emplace_back(worker);
    for (std::thread &thread : threads)
        thread.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

std::uint64_t
Scheduler::taskSeed(std::uint64_t base, std::uint64_t index)
{
    return hashCombine(base, index);
}

} // namespace fcdram
