#include "fcdram/scheduler.hh"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "obs/telemetry.hh"

namespace fcdram {

namespace {

/**
 * Set while the current thread is a pool worker (of any Scheduler).
 * A task that itself calls Scheduler::run must not block on the pool
 * it is running on, so nested calls execute inline.
 */
thread_local bool tls_pool_worker = false;

/**
 * Shared task invocation wrapper: the pool drain loop and the inline
 * fallback both go through here so metrics and spans are identical
 * regardless of worker count.
 */
void
invokeTask(const std::function<void(std::size_t)> &task,
           std::size_t index)
{
    obs::Telemetry &tel = obs::global();
    if (tel.metricsOn())
        tel.add(tel.counter("scheduler.tasks"));
    if (tel.spansOn()) {
        obs::Span span(tel, "sched.task");
        span.arg("index", static_cast<std::uint64_t>(index));
        task(index);
        return;
    }
    task(index);
}

} // namespace

/**
 * One run() invocation. Heap-allocated and handed to workers as a
 * shared_ptr so that a worker still draining an old job can never
 * claim indices of (or otherwise touch) a newer job's state.
 */
struct Scheduler::Job
{
    std::size_t numTasks = 0;
    const std::function<void(std::size_t)> *task = nullptr;

    /** Next unclaimed task index (may overshoot numTasks). */
    std::atomic<std::size_t> next{0};

    /** Tasks finished so far; the job is done at numTasks. */
    std::atomic<std::size_t> completed{0};

    std::exception_ptr firstError;
    std::mutex errorMutex;
};

struct Scheduler::Pool
{
    std::mutex mutex;
    std::condition_variable workCv; ///< Workers wait for a new job.
    std::condition_variable doneCv; ///< run() waits for completion.
    std::shared_ptr<Job> job;       ///< Current job; null when idle.
    bool stop = false;
    std::vector<std::thread> threads;

    /** Serializes run() submissions (losers run inline). */
    std::mutex runMutex;

    /** Claim-and-execute loop shared by workers and the caller. */
    void drain(Job &active)
    {
        for (;;) {
            const std::size_t index =
                active.next.fetch_add(1, std::memory_order_relaxed);
            if (index >= active.numTasks)
                return;
            try {
                invokeTask(*active.task, index);
            } catch (...) {
                std::lock_guard<std::mutex> lock(active.errorMutex);
                if (!active.firstError)
                    active.firstError = std::current_exception();
            }
            const std::size_t done =
                active.completed.fetch_add(1,
                                           std::memory_order_acq_rel) +
                1;
            if (done == active.numTasks) {
                // Lock-step with the waiter's predicate check so the
                // final notification cannot be lost.
                { std::lock_guard<std::mutex> lock(mutex); }
                doneCv.notify_all();
            }
        }
    }

    void workerLoop()
    {
        tls_pool_worker = true;
        std::shared_ptr<Job> last;
        for (;;) {
            std::shared_ptr<Job> current;
            {
                std::unique_lock<std::mutex> lock(mutex);
                workCv.wait(lock, [&] {
                    return stop || (job != nullptr && job != last);
                });
                if (stop)
                    return;
                current = job;
            }
            last = current;
            drain(*current);
        }
    }
};

int
Scheduler::hardwareWorkers()
{
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : static_cast<int>(hardware);
}

Scheduler::Scheduler(int workers) : workers_(workers)
{
    if (workers_ <= 0)
        workers_ = hardwareWorkers();
    if (workers_ > 1) {
        pool_ = std::make_unique<Pool>();
        // The calling thread drains jobs too, so workers_ - 1 pool
        // threads give workers_ concurrent lanes.
        pool_->threads.reserve(static_cast<std::size_t>(workers_ - 1));
        for (int t = 0; t < workers_ - 1; ++t)
            pool_->threads.emplace_back(
                [pool = pool_.get()] { pool->workerLoop(); });
    }
}

Scheduler::~Scheduler()
{
    if (!pool_)
        return;
    {
        std::lock_guard<std::mutex> lock(pool_->mutex);
        pool_->stop = true;
    }
    pool_->workCv.notify_all();
    for (std::thread &thread : pool_->threads)
        thread.join();
}

void
Scheduler::run(std::size_t numTasks,
               const std::function<void(std::size_t)> &task) const
{
    if (numTasks == 0)
        return;
    const auto run_inline = [&] {
        for (std::size_t i = 0; i < numTasks; ++i)
            invokeTask(task, i);
    };
    if (pool_ == nullptr || numTasks == 1 || tls_pool_worker) {
        run_inline();
        return;
    }
    std::unique_lock<std::mutex> submission(pool_->runMutex,
                                            std::try_to_lock);
    if (!submission.owns_lock()) {
        // Another thread is already driving the pool: overlapped
        // run() calls stay correct by executing inline.
        run_inline();
        return;
    }

    auto job = std::make_shared<Job>();
    job->numTasks = numTasks;
    job->task = &task;
    {
        std::lock_guard<std::mutex> lock(pool_->mutex);
        pool_->job = job;
    }
    pool_->workCv.notify_all();

    pool_->drain(*job);
    {
        std::unique_lock<std::mutex> lock(pool_->mutex);
        pool_->doneCv.wait(lock, [&] {
            return job->completed.load(std::memory_order_acquire) ==
                   numTasks;
        });
        pool_->job.reset();
    }
    if (job->firstError)
        std::rethrow_exception(job->firstError);
}

std::uint64_t
Scheduler::taskSeed(std::uint64_t base, std::uint64_t index)
{
    return hashCombine(base, index);
}

} // namespace fcdram
