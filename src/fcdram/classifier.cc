#include "fcdram/classifier.hh"

#include <cassert>
#include <sstream>

#include "dram/address.hh"
#include "dram/openbitline.hh"

namespace fcdram {

std::string
ClassifiedActivation::typeName() const
{
    if (!simultaneous)
        return "none";
    std::ostringstream oss;
    oss << firstRows.size() << ":" << secondRows.size();
    return oss.str();
}

double
CoverageStats::coverage(const std::string &type) const
{
    if (totalPairs == 0)
        return 0.0;
    const auto it = counts.find(type);
    if (it == counts.end())
        return 0.0;
    return static_cast<double>(it->second) /
           static_cast<double>(totalPairs);
}

ActivationClassifier::ActivationClassifier(DramBender &bender,
                                           std::uint64_t seed)
    : bender_(bender), rng_(seed)
{
}

ClassifiedActivation
ActivationClassifier::classify(BankId bank, SubarrayId firstSubarray,
                               RowId rfLocal, SubarrayId secondSubarray,
                               RowId rlLocal)
{
    const GeometryConfig &geometry = bender_.chip().geometry();
    assert(std::abs(static_cast<int>(firstSubarray) -
                    static_cast<int>(secondSubarray)) == 1);

    // Step 1: initialize both subarrays with a base pattern. The
    // probe pattern must be statistically independent of the base:
    // if probe == ~base, an idle second-subarray row (holding base)
    // would be indistinguishable from one that captured ~probe.
    BitVector base(static_cast<std::size_t>(geometry.columns));
    base.randomize(rng_);
    BitVector probe(static_cast<std::size_t>(geometry.columns));
    probe.randomize(rng_);
    const auto rows = static_cast<RowId>(geometry.rowsPerSubarray);
    for (RowId local = 0; local < rows; ++local) {
        bender_.writeRow(bank,
                         composeRow(geometry, firstSubarray, local),
                         base);
        bender_.writeRow(bank,
                         composeRow(geometry, secondSubarray, local),
                         base);
    }

    // Step 2: the violated double activation followed by a WR with a
    // different pattern (respecting write timing).
    const RowId rf = composeRow(geometry, firstSubarray, rfLocal);
    const RowId rl = composeRow(geometry, secondSubarray, rlLocal);
    ProgramBuilder builder = bender_.newProgram();
    builder.act(bank, rf, 0.0)
        .pre(bank, kViolatedGapTargetNs)
        .act(bank, rl, kViolatedGapTargetNs)
        .writeNominal(bank, rl, probe)
        .preNominal(bank);
    bender_.execute(builder.build());

    // Step 3: read every row of both subarrays and detect captures.
    ClassifiedActivation activation;
    const auto shared =
        sharedColumns(geometry, firstSubarray, secondSubarray);
    for (RowId local = 0; local < rows; ++local) {
        const BitVector readback = bender_.readRow(
            bank, composeRow(geometry, firstSubarray, local));
        // First-subarray rows capture the written pattern on all
        // columns (Observation 1).
        if (readback.hammingDistance(probe) <= probe.size() / 16)
            activation.firstRows.push_back(local);
    }
    for (RowId local = 0; local < rows; ++local) {
        const BitVector readback = bender_.readRow(
            bank, composeRow(geometry, secondSubarray, local));
        // Second-subarray rows capture the complement on the shared
        // columns and retain the base pattern elsewhere.
        std::size_t inverted = 0;
        for (const ColId col : shared)
            inverted += readback.get(col) != probe.get(col) ? 1 : 0;
        if (inverted >= shared.size() - shared.size() / 16)
            activation.secondRows.push_back(local);
    }
    activation.simultaneous = !activation.firstRows.empty() &&
                              !activation.secondRows.empty();
    return activation;
}

CoverageStats
ActivationClassifier::sampleCoverage(BankId bank,
                                     SubarrayId firstSubarray,
                                     SubarrayId secondSubarray,
                                     int pairs)
{
    const GeometryConfig &geometry = bender_.chip().geometry();
    const auto rows = static_cast<RowId>(geometry.rowsPerSubarray);
    CoverageStats stats;
    for (int i = 0; i < pairs; ++i) {
        const auto rf = static_cast<RowId>(rng_.below(rows));
        const auto rl = static_cast<RowId>(rng_.below(rows));
        const ClassifiedActivation activation = classify(
            bank, firstSubarray, rf, secondSubarray, rl);
        ++stats.counts[activation.typeName()];
        ++stats.totalPairs;
    }
    return stats;
}

} // namespace fcdram
