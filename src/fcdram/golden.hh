/**
 * @file
 * Golden (software) reference implementations of the bulk bitwise
 * operations, used to verify in-DRAM results and to drive the
 * success-rate comparisons.
 */

#ifndef FCDRAM_FCDRAM_GOLDEN_HH
#define FCDRAM_FCDRAM_GOLDEN_HH

#include <vector>

#include "common/bitvector.hh"
#include "common/types.hh"

namespace fcdram {

/** Bitwise NOT. */
BitVector goldenNot(const BitVector &input);

/** N-input bitwise AND. @pre !inputs.empty() */
BitVector goldenAnd(const std::vector<BitVector> &inputs);

/** N-input bitwise OR. @pre !inputs.empty() */
BitVector goldenOr(const std::vector<BitVector> &inputs);

/** N-input bitwise NAND. @pre !inputs.empty() */
BitVector goldenNand(const std::vector<BitVector> &inputs);

/** N-input bitwise NOR. @pre !inputs.empty() */
BitVector goldenNor(const std::vector<BitVector> &inputs);

/** Bitwise majority over an odd number of inputs. */
BitVector goldenMaj(const std::vector<BitVector> &inputs);

/**
 * Bitwise majority over an odd number of inputs referenced in place
 * (no operand copies; for callers whose operands live in a larger
 * store, e.g. expression evaluation memos).
 */
BitVector goldenMaj(const std::vector<const BitVector *> &inputs);

/** Dispatch by op (Not uses inputs[0] only). */
BitVector goldenOp(BoolOp op, const std::vector<BitVector> &inputs);

} // namespace fcdram

#endif // FCDRAM_FCDRAM_GOLDEN_HH
