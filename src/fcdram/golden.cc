#include "fcdram/golden.hh"

#include <cassert>

namespace fcdram {

BitVector
goldenNot(const BitVector &input)
{
    return ~input;
}

BitVector
goldenAnd(const std::vector<BitVector> &inputs)
{
    assert(!inputs.empty());
    BitVector result = inputs.front();
    for (std::size_t i = 1; i < inputs.size(); ++i)
        result = result & inputs[i];
    return result;
}

BitVector
goldenOr(const std::vector<BitVector> &inputs)
{
    assert(!inputs.empty());
    BitVector result = inputs.front();
    for (std::size_t i = 1; i < inputs.size(); ++i)
        result = result | inputs[i];
    return result;
}

BitVector
goldenNand(const std::vector<BitVector> &inputs)
{
    return ~goldenAnd(inputs);
}

BitVector
goldenNor(const std::vector<BitVector> &inputs)
{
    return ~goldenOr(inputs);
}

BitVector
goldenMaj(const std::vector<BitVector> &inputs)
{
    assert(!inputs.empty());
    assert(inputs.size() % 2 == 1);
    const std::size_t size = inputs.front().size();
    BitVector result(size);
    for (std::size_t bit = 0; bit < size; ++bit) {
        std::size_t ones = 0;
        for (const auto &input : inputs)
            ones += input.get(bit) ? 1 : 0;
        result.set(bit, 2 * ones > inputs.size());
    }
    return result;
}

BitVector
goldenOp(BoolOp op, const std::vector<BitVector> &inputs)
{
    switch (op) {
      case BoolOp::Not: return goldenNot(inputs.front());
      case BoolOp::And: return goldenAnd(inputs);
      case BoolOp::Or: return goldenOr(inputs);
      case BoolOp::Nand: return goldenNand(inputs);
      case BoolOp::Nor: return goldenNor(inputs);
      case BoolOp::Maj3:
      case BoolOp::Maj5: return goldenMaj(inputs);
    }
    return BitVector();
}

} // namespace fcdram
