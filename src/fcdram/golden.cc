#include "fcdram/golden.hh"

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>

namespace fcdram {

BitVector
goldenNot(const BitVector &input)
{
    return ~input;
}

BitVector
goldenAnd(const std::vector<BitVector> &inputs)
{
    assert(!inputs.empty());
    BitVector result = inputs.front();
    for (std::size_t i = 1; i < inputs.size(); ++i)
        result &= inputs[i];
    return result;
}

BitVector
goldenOr(const std::vector<BitVector> &inputs)
{
    assert(!inputs.empty());
    BitVector result = inputs.front();
    for (std::size_t i = 1; i < inputs.size(); ++i)
        result |= inputs[i];
    return result;
}

BitVector
goldenNand(const std::vector<BitVector> &inputs)
{
    return ~goldenAnd(inputs);
}

BitVector
goldenNor(const std::vector<BitVector> &inputs)
{
    return ~goldenOr(inputs);
}

BitVector
goldenMaj(const std::vector<const BitVector *> &inputs)
{
    assert(!inputs.empty());
    assert(inputs.size() % 2 == 1);
    const std::size_t n = inputs.size();
    const std::size_t size = inputs.front()->size();
    const std::size_t words = BitVector::wordCountFor(size);
    const int plane_count = std::bit_width(n);
    // 2 * ones > n with odd n is ones >= (n + 1) / 2.
    const std::uint64_t threshold = (n + 1) / 2;
    assert(plane_count <= 9);

    BitVector result(size);
    const auto out = result.words();
    for (std::size_t w = 0; w < words; ++w) {
        // Bit-sliced vertical counter: plane p holds bit p of the
        // per-column ones count across all inputs.
        std::array<std::uint64_t, 9> planes{};
        for (const BitVector *input : inputs) {
            std::uint64_t carry = input->words()[w];
            for (int p = 0; carry != 0 && p < plane_count; ++p) {
                const std::uint64_t overflow = planes[p] & carry;
                planes[p] ^= carry;
                carry = overflow;
            }
        }
        // Per-column count >= threshold, MSB-first bit-serial compare.
        std::uint64_t greater = 0;
        std::uint64_t equal = ~std::uint64_t{0};
        for (int p = plane_count - 1; p >= 0; --p) {
            const std::uint64_t tb =
                ((threshold >> p) & 1) ? ~std::uint64_t{0} : 0;
            greater |= equal & planes[p] & ~tb;
            equal &= ~(planes[p] ^ tb);
        }
        out[w] = greater | equal;
    }
    result.maskTail();
    return result;
}

BitVector
goldenMaj(const std::vector<BitVector> &inputs)
{
    std::vector<const BitVector *> refs;
    refs.reserve(inputs.size());
    for (const BitVector &input : inputs)
        refs.push_back(&input);
    return goldenMaj(refs);
}

BitVector
goldenOp(BoolOp op, const std::vector<BitVector> &inputs)
{
    switch (op) {
      case BoolOp::Not: return goldenNot(inputs.front());
      case BoolOp::And: return goldenAnd(inputs);
      case BoolOp::Or: return goldenOr(inputs);
      case BoolOp::Nand: return goldenNand(inputs);
      case BoolOp::Nor: return goldenNor(inputs);
      case BoolOp::Maj3:
      case BoolOp::Maj5: return goldenMaj(inputs);
    }
    return BitVector();
}

} // namespace fcdram
