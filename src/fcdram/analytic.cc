#include "fcdram/analytic.hh"

#include <cassert>
#include <cmath>

#include "dram/address.hh"
#include "dram/openbitline.hh"

namespace fcdram {

AnalyticAnalyzer::AnalyticAnalyzer(const Chip &chip,
                                   const AnalyticConfig &config,
                                   std::uint64_t seed)
    : chip_(chip), config_(config),
      rng_(hashCombine(chip.seed(), seed))
{
}

double
AnalyticAnalyzer::toPercent(double probability)
{
    if (!config_.sampleBinomial)
        return 100.0 * probability;
    const auto trials = static_cast<std::uint64_t>(config_.trials);
    const auto successes = rng_.binomial(trials, probability);
    return 100.0 * static_cast<double>(successes) /
           static_cast<double>(trials);
}

SampleSet
AnalyticAnalyzer::toSampleSet(const std::vector<CellSample> &samples)
{
    SampleSet set;
    for (const CellSample &sample : samples)
        set.add(toPercent(sample.probability));
    return set;
}

std::vector<double>
AnalyticAnalyzer::onesWeights(PatternClass pattern, int n)
{
    std::vector<double> weights(static_cast<std::size_t>(n) + 1, 0.0);
    switch (pattern) {
      case PatternClass::Random:
      case PatternClass::AllOnes:
      case PatternClass::AllZeros: {
        // Per-column operand bits (Random) and uniformly drawn
        // all-1s/all-0s row assignments both make numOnes
        // Binomial(n, 1/2); the classes differ only in coupling.
        double binom = 1.0;
        const double scale = std::pow(0.5, n);
        for (int k = 0; k <= n; ++k) {
            weights[static_cast<std::size_t>(k)] = binom * scale;
            binom = binom * static_cast<double>(n - k) /
                    static_cast<double>(k + 1);
        }
        break;
      }
      case PatternClass::FixedOnes:
        // Caller supplies the ones count explicitly; not used here.
        break;
    }
    return weights;
}

std::vector<CellSample>
AnalyticAnalyzer::notSamples(BankId bank, RowId srcGlobal,
                             RowId dstGlobal,
                             const OpConditions &cond) const
{
    const GeometryConfig &geometry = chip_.geometry();
    const RowAddress src = decomposeRow(geometry, srcGlobal);
    const RowAddress dst = decomposeRow(geometry, dstGlobal);
    const ActivationSets sets =
        chip_.decoder().neighborActivation(src.localRow, dst.localRow);
    std::vector<CellSample> samples;
    if (!sets.simultaneous && !sets.sequential)
        return samples;

    const SuccessModel &model = chip_.model();
    const Bank &bank_ref = chip_.bank(bank);
    const Subarray &src_sub = bank_ref.subarray(src.subarray);
    const Subarray &dst_sub = bank_ref.subarray(dst.subarray);
    const StripeId stripe = sharedStripe(src.subarray, dst.subarray);
    const auto columns =
        sharedColumns(geometry, src.subarray, dst.subarray);
    const int total = sets.nrf() + sets.nrl();
    const int pair_load = (total + 1) / 2;

    NotContext ctx;
    ctx.totalActivatedRows = total;
    ctx.srcRegion = src_sub.regionFor(src.localRow, stripe);
    ctx.cond = cond;

    samples.reserve(sets.secondRows.size() * columns.size());
    for (const RowId local : sets.secondRows) {
        ctx.dstRegion = dst_sub.regionFor(local, stripe);
        const Volt margin = model.notMargin(ctx);
        const RowId global = composeRow(geometry, dst.subarray, local);
        for (const ColId col : columns) {
            const Volt offset =
                model.staticOffset(bank, global, col, stripe);
            const bool fail_struct =
                model.structuralFail(bank, stripe, col, pair_load);
            CellSample sample;
            sample.rowLocal = local;
            sample.col = col;
            sample.ownRegion = ctx.dstRegion;
            sample.otherRegion = ctx.srcRegion;
            sample.probability = model.cellSuccessProbability(
                margin, offset, fail_struct);
            samples.push_back(sample);
        }
    }
    return samples;
}

std::vector<CellSample>
AnalyticAnalyzer::majSamples(BankId bank, RowId rfGlobal,
                             RowId rlGlobal, int operandCells,
                             int neutralCells, const OpConditions &cond,
                             int fixedOnes) const
{
    assert(operandCells >= 1 && neutralCells >= 0);
    std::vector<CellSample> samples;
    const GeometryConfig &geometry = chip_.geometry();
    const RowAddress rf = decomposeRow(geometry, rfGlobal);
    const RowAddress rl = decomposeRow(geometry, rlGlobal);
    assert(rf.subarray == rl.subarray);
    const auto set = chip_.decoder().sameSubarrayActivation(
        rf.localRow, rl.localRow);
    const int n = static_cast<int>(set.size());
    if (n < 2 || operandCells + neutralCells > n)
        return samples;
    // Balanced constant pairs fill the rest of the group; the all-1s
    // halves shift the ones-count without moving the majority
    // threshold.
    const int constant_ones = (n - operandCells - neutralCells) / 2;
    assert(fixedOnes <= operandCells);

    const SuccessModel &model = chip_.model();
    const Subarray &subarray = chip_.bank(bank).subarray(rf.subarray);
    const int pair_load = (n + 1) / 2;

    std::vector<double> weights;
    if (fixedOnes >= 0) {
        weights.assign(static_cast<std::size_t>(operandCells) + 1,
                       0.0);
        weights[static_cast<std::size_t>(fixedOnes)] = 1.0;
    } else {
        weights = onesWeights(PatternClass::Random, operandCells);
    }

    MajContext ctx;
    ctx.activatedRows = n;
    ctx.neutralCells = neutralCells;
    ctx.cond = cond;
    std::vector<Volt> margins(weights.size());
    for (int k = 0; k < static_cast<int>(weights.size()); ++k) {
        ctx.numOnes = k + constant_ones;
        margins[static_cast<std::size_t>(k)] = model.majMargin(ctx);
    }

    samples.reserve(set.size() *
                    static_cast<std::size_t>(geometry.columns));
    for (const RowId local : set) {
        const RowId global = composeRow(geometry, rf.subarray, local);
        for (ColId col = 0; col < static_cast<ColId>(geometry.columns);
             ++col) {
            const StripeId stripe = stripeFor(rf.subarray, col);
            const Volt offset =
                model.staticOffset(bank, global, col, stripe);
            const bool fail_struct =
                model.structuralFail(bank, stripe, col, pair_load);
            double p = 0.0;
            for (std::size_t k = 0; k < weights.size(); ++k) {
                if (weights[k] == 0.0)
                    continue;
                p += weights[k] * model.cellSuccessProbability(
                                      margins[k], offset, fail_struct);
            }
            CellSample sample;
            sample.rowLocal = local;
            sample.col = col;
            sample.ownRegion = subarray.regionFor(local, stripe);
            sample.otherRegion = sample.ownRegion;
            sample.probability = p;
            samples.push_back(sample);
        }
    }
    return samples;
}

std::vector<CellSample>
AnalyticAnalyzer::logicSamples(BankId bank, BoolOp op, RowId refGlobal,
                               RowId comGlobal, const OpConditions &cond,
                               PatternClass pattern, int fixedOnes) const
{
    std::vector<CellSample> samples;
    const GeometryConfig &geometry = chip_.geometry();
    const RowAddress ref = decomposeRow(geometry, refGlobal);
    const RowAddress com = decomposeRow(geometry, comGlobal);
    const ActivationSets sets =
        chip_.decoder().neighborActivation(ref.localRow, com.localRow);
    if (!sets.simultaneous || sets.nrf() != sets.nrl())
        return samples;
    const int n = sets.nrl();
    assert(fixedOnes <= n);

    const SuccessModel &model = chip_.model();
    const Bank &bank_ref = chip_.bank(bank);
    const Subarray &ref_sub = bank_ref.subarray(ref.subarray);
    const Subarray &com_sub = bank_ref.subarray(com.subarray);
    const StripeId stripe = sharedStripe(ref.subarray, com.subarray);
    const auto columns =
        sharedColumns(geometry, ref.subarray, com.subarray);

    // All-1s/all-0s row patterns (and Fig. 16 sweeps) have no
    // neighbor disagreement.
    OpConditions effective = cond;
    if (pattern != PatternClass::Random)
        effective.couplingFraction = 0.0;

    std::vector<double> weights;
    if (fixedOnes >= 0) {
        weights.assign(static_cast<std::size_t>(n) + 1, 0.0);
        weights[static_cast<std::size_t>(fixedOnes)] = 1.0;
    } else {
        weights = onesWeights(pattern, n);
    }

    const bool measure_ref = isInvertedOp(op);
    const auto &rows = measure_ref ? sets.firstRows : sets.secondRows;
    const SubarrayId row_sa = measure_ref ? ref.subarray : com.subarray;
    const Subarray &row_sub = measure_ref ? ref_sub : com_sub;
    const Region ref_rep = ref_sub.regionFor(ref.localRow, stripe);
    const Region com_rep = com_sub.regionFor(com.localRow, stripe);

    LogicContext ctx;
    ctx.op = op;
    ctx.numInputs = n;
    ctx.cond = effective;

    samples.reserve(rows.size() * columns.size());
    for (const RowId local : rows) {
        const Region own = row_sub.regionFor(local, stripe);
        if (measure_ref) {
            ctx.refRegion = own;
            ctx.comRegion = com_rep;
        } else {
            ctx.comRegion = own;
            ctx.refRegion = ref_rep;
        }
        // Margins per numOnes are shared across this row's columns.
        std::vector<Volt> margins(weights.size());
        for (int k = 0; k < static_cast<int>(weights.size()); ++k) {
            ctx.numOnes = k;
            margins[static_cast<std::size_t>(k)] =
                model.logicMargin(ctx);
        }
        const RowId global = composeRow(geometry, row_sa, local);
        for (const ColId col : columns) {
            const Volt offset =
                model.staticOffset(bank, global, col, stripe);
            const bool fail_struct =
                model.structuralFail(bank, stripe, col, n);
            double p = 0.0;
            for (std::size_t k = 0; k < weights.size(); ++k) {
                if (weights[k] == 0.0)
                    continue;
                p += weights[k] * model.cellSuccessProbability(
                                      margins[k], offset, fail_struct);
            }
            CellSample sample;
            sample.rowLocal = local;
            sample.col = col;
            sample.ownRegion = own;
            sample.otherRegion = measure_ref ? com_rep : ref_rep;
            sample.probability = p;
            samples.push_back(sample);
        }
    }
    return samples;
}

} // namespace fcdram
