/**
 * @file
 * DRAM-based true random number generation from metastable
 * charge sharing — the extension the paper's Section 8.1 suggests:
 * simultaneously activating Frac-initialized (VDD/2) rows leaves the
 * bitlines exactly at the sense amplifiers' metastable point, so the
 * resolved values are governed by thermal noise.
 *
 * As in QUAC-TRNG, not every cell is a good entropy source (static
 * offsets bias most of them); the generator first profiles the
 * columns and keeps only near-50% cells, then applies von Neumann
 * whitening across consecutive samples.
 */

#ifndef FCDRAM_FCDRAM_TRNG_HH
#define FCDRAM_FCDRAM_TRNG_HH

#include <cstdint>
#include <vector>

#include "fcdram/ops.hh"

namespace fcdram {

/** True random number generator on one subarray of a chip. */
class DramTrng
{
  public:
    /**
     * @param bender Session on the chip.
     * @param bank Bank to use.
     * @param subarray Subarray whose rows are sacrificed to the TRNG.
     */
    DramTrng(DramBender &bender, BankId bank, SubarrayId subarray);

    /**
     * Profile the columns: run @p trials raw samples and keep the
     * columns whose ones-rate lies in [lo, hi] as entropy cells.
     *
     * @return Number of entropy cells found.
     */
    std::size_t calibrate(int trials = 32, double lo = 0.25,
                          double hi = 0.75);

    /** Columns selected by calibrate(). */
    const std::vector<ColId> &entropyCells() const
    {
        return entropyCells_;
    }

    /**
     * One raw sample: Frac-initialize the row pair, charge-share them
     * (metastable), read the resolved bits of the first row.
     */
    BitVector rawSample();

    /**
     * Generate @p bits whitened random bits (von Neumann extractor
     * over consecutive raw samples of the entropy cells).
     * @pre calibrate() found at least one entropy cell.
     */
    BitVector randomBits(std::size_t bits);

    /** Raw samples consumed so far (throughput accounting). */
    std::uint64_t rawSamplesDrawn() const { return rawSamples_; }

  private:
    DramBender &bender_;
    Ops ops_;
    BankId bank_;
    SubarrayId subarray_;
    RowId rowA_;
    RowId rowB_;
    std::vector<ColId> entropyCells_;
    std::uint64_t rawSamples_;
};

} // namespace fcdram

#endif // FCDRAM_FCDRAM_TRNG_HH
