/**
 * @file
 * Deterministic fan-out scheduler for fleet experiments.
 *
 * Experiments are decomposed into independent, index-addressed tasks;
 * the scheduler runs them on a persistent pool of worker threads
 * (created once per Scheduler, shut down in the destructor), so the
 * thousands of small mapReduce calls a figure sweep makes pay no
 * thread spawn/join churn. Determinism is the contract: tasks may
 * execute in any order and on any worker, so every task must derive
 * its randomness from an explicit per-task seed (Scheduler::taskSeed)
 * and write only task-private state. Callers merge per-task results
 * by task index, which makes single- and multi-threaded runs
 * bit-identical.
 */

#ifndef FCDRAM_FCDRAM_SCHEDULER_HH
#define FCDRAM_FCDRAM_SCHEDULER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace fcdram {

/** Runs independent, index-addressed tasks across worker threads. */
class Scheduler
{
  public:
    /**
     * @param workers Worker-thread count; <= 0 selects the hardware
     *        concurrency (at least one). With more than one worker
     *        the pool threads start here and live until destruction.
     */
    explicit Scheduler(int workers = 0);

    /** Stops and joins the worker pool. */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Resolved worker count. */
    int workers() const { return workers_; }

    /**
     * The hardware concurrency a default-constructed scheduler
     * resolves to (at least one). Shared by the serving tier to size
     * its default shard-thread count consistently with the pool.
     */
    static int hardwareWorkers();

    /**
     * Execute task(0) .. task(numTasks - 1) and block until all have
     * finished. Runs inline when one worker suffices (workers() == 1,
     * a single task, a nested call from a pool worker, or a
     * concurrent run() already draining the pool); otherwise the
     * calling thread drains tasks alongside the pool workers. Tasks
     * must be independent; the first exception thrown by any task is
     * rethrown after the job drains.
     */
    void run(std::size_t numTasks,
             const std::function<void(std::size_t)> &task) const;

    /**
     * Seed of task @p index under base seed @p base. Stable in the
     * worker count and the execution order by construction.
     */
    static std::uint64_t taskSeed(std::uint64_t base,
                                  std::uint64_t index);

  private:
    struct Job;
    struct Pool;

    int workers_;

    /** Persistent worker pool; null when workers_ == 1. */
    std::unique_ptr<Pool> pool_;
};

} // namespace fcdram

#endif // FCDRAM_FCDRAM_SCHEDULER_HH
