#include "fcdram/reliablemask.hh"

namespace fcdram {

ReliableMask::ReliableMask(const Chip &chip, double thresholdPercent)
    : chip_(chip), thresholdPercent_(thresholdPercent)
{
}

namespace {

BitVector
maskFromSamples(const std::vector<CellSample> &samples,
                std::size_t columns, double thresholdPercent)
{
    if (samples.empty())
        return BitVector();
    BitVector mask(columns, false);
    // A column qualifies if it appears in the samples and every row's
    // cell on it meets the threshold.
    std::vector<int> seen(columns, 0);
    std::vector<int> good(columns, 0);
    for (const CellSample &sample : samples) {
        ++seen[sample.col];
        if (100.0 * sample.probability >= thresholdPercent)
            ++good[sample.col];
    }
    for (std::size_t col = 0; col < columns; ++col)
        mask.set(col, seen[col] > 0 && good[col] == seen[col]);
    return mask;
}

} // namespace

BitVector
ReliableMask::notMask(BankId bank, RowId srcGlobal, RowId dstGlobal,
                      const OpConditions &cond) const
{
    AnalyticConfig config;
    config.sampleBinomial = false;
    AnalyticAnalyzer analyzer(chip_, config, 0);
    const auto samples =
        analyzer.notSamples(bank, srcGlobal, dstGlobal, cond);
    return maskFromSamples(
        samples, static_cast<std::size_t>(chip_.geometry().columns),
        thresholdPercent_);
}

BitVector
ReliableMask::logicMask(BankId bank, BoolOp op, RowId refGlobal,
                        RowId comGlobal, const OpConditions &cond) const
{
    AnalyticConfig config;
    config.sampleBinomial = false;
    AnalyticAnalyzer analyzer(chip_, config, 0);
    const auto samples = analyzer.logicSamples(
        bank, op, refGlobal, comGlobal, cond, PatternClass::Random);
    return maskFromSamples(
        samples, static_cast<std::size_t>(chip_.geometry().columns),
        thresholdPercent_);
}

double
ReliableMask::maskDensity(const BitVector &mask)
{
    if (mask.size() == 0)
        return 0.0;
    return static_cast<double>(mask.popcount()) /
           static_cast<double>(mask.size());
}

} // namespace fcdram
