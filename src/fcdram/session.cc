#include "fcdram/session.hh"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "dram/address.hh"

namespace fcdram {

CampaignConfig::CampaignConfig()
{
    geometry = GeometryConfig::standard();
    geometry.columns = 128;
}

CampaignConfig
CampaignConfig::forTests()
{
    CampaignConfig config;
    config.geometry = GeometryConfig::standard();
    config.geometry.columns = 32;
    config.geometry.numBanks = 1;
    config.geometry.subarraysPerBank = 4;
    config.banksPerChip = 1;
    config.subarrayPairsPerBank = 2;
    config.pairSamplesPerConfig = 6;
    config.probesPerPair = 4000;
    config.analytic.trials = 2000;
    return config;
}

PairQuery
PairQuery::anyWithDest(int dest)
{
    PairQuery query;
    query.activation = Activation::Any;
    query.destRows = dest;
    return query;
}

PairQuery
PairQuery::simultaneousWithDest(int dest)
{
    PairQuery query;
    query.activation = Activation::Simultaneous;
    query.destRows = dest;
    return query;
}

PairQuery
PairQuery::square(int inputs)
{
    PairQuery query;
    query.activation = Activation::Simultaneous;
    query.sourceRows = inputs;
    query.destRows = inputs;
    return query;
}

PairQuery
PairQuery::sameSubarray(int rows)
{
    PairQuery query;
    query.activation = Activation::SameSubarray;
    query.destRows = rows;
    return query;
}

bool
PairQuery::matches(const ActivationSets &sets) const
{
    if (activation == Activation::Simultaneous ||
        activation == Activation::SameSubarray) {
        if (!sets.simultaneous)
            return false;
    } else if (!sets.simultaneous && !sets.sequential) {
        return false;
    }
    if (sourceRows >= 0 && sets.nrf() != sourceRows)
        return false;
    if (destRows >= 0 && sets.nrl() != destRows)
        return false;
    return true;
}

std::uint64_t
PairQuery::key() const
{
    std::uint64_t key = hashCombine(
        0x5041ULL, static_cast<std::uint64_t>(activation));
    key = hashCombine(key,
                      static_cast<std::uint64_t>(sourceRows + 1));
    return hashCombine(key, static_cast<std::uint64_t>(destRows + 1));
}

bool
PairQuery::operator<(const PairQuery &other) const
{
    return std::tie(activation, sourceRows, destRows) <
           std::tie(other.activation, other.sourceRows,
                    other.destRows);
}

std::vector<std::pair<RowId, RowId>>
findQualifyingPairs(const Chip &chip, const PairContext &context,
                    const PairQuery &query, int probes, int maxPairs,
                    std::uint64_t seed)
{
    std::vector<std::pair<RowId, RowId>> pairs;
    const GeometryConfig &geometry = chip.geometry();
    const auto rows = static_cast<RowId>(geometry.rowsPerSubarray);
    Rng rng(seed);

    if (query.activation == PairQuery::Activation::SameSubarray) {
        // SiMRA row groups: both rows of the pair live in the low
        // subarray, and candidates come from the decoder-hierarchy
        // address mask (only the coverage gate needs probing).
        for (int probe = 0;
             probe < probes &&
             static_cast<int>(pairs.size()) < maxPairs;
             ++probe) {
            const auto base = static_cast<RowId>(rng.below(rows));
            const RowId partner = query.destRows >= 2
                                      ? chip.decoder().maskPartner(
                                            base, query.destRows)
                                      : static_cast<RowId>(
                                            rng.below(rows));
            if (partner == kInvalidRow)
                break; // Mask unreachable on this decoder.
            const auto set = chip.decoder().sameSubarrayActivation(
                partner, base);
            ActivationSets sets;
            sets.simultaneous = set.size() > 1;
            sets.secondRows = set;
            if (!query.matches(sets))
                continue;
            pairs.emplace_back(
                composeRow(geometry, context.lowSubarray, partner),
                composeRow(geometry, context.lowSubarray, base));
        }
        return pairs;
    }

    for (int probe = 0;
         probe < probes && static_cast<int>(pairs.size()) < maxPairs;
         ++probe) {
        const auto rf = static_cast<RowId>(rng.below(rows));
        const auto rl = static_cast<RowId>(rng.below(rows));
        const ActivationSets sets =
            chip.decoder().neighborActivation(rf, rl);
        if (!query.matches(sets))
            continue;
        pairs.emplace_back(
            composeRow(geometry, context.lowSubarray, rf),
            composeRow(geometry, context.lowSubarray + 1, rl));
    }
    return pairs;
}

bool
FleetSession::PairCacheKey::operator<(const PairCacheKey &other) const
{
    return std::tie(module, bank, lowSubarray, query) <
           std::tie(other.module, other.bank, other.lowSubarray,
                    other.query);
}

FleetSession::FleetSession(const CampaignConfig &config)
    : config_(config), scheduler_(config.workers)
{
    assert(config_.geometry.valid());
    std::size_t index = 0;
    for (const ModuleSpec &spec : table1Fleet()) {
        for (int m = 0; m < spec.numModules; ++m) {
            Module module;
            module.spec = &spec;
            module.index = ++index;
            module.seed =
                Scheduler::taskSeed(config_.seed, module.index);
            table1Modules_.push_back(module);
            if (spec.manufacturer == Manufacturer::SkHynix)
                skHynixModules_.push_back(module);
        }
        if (spec.manufacturer == Manufacturer::SkHynix)
            skHynixSpecs_.push_back(spec);
    }
}

const std::vector<FleetSession::Module> &
FleetSession::modules(Fleet fleet) const
{
    return fleet == Fleet::SkHynix ? skHynixModules_ : table1Modules_;
}

const std::vector<ModuleSpec> &
FleetSession::specs(Fleet fleet) const
{
    return fleet == Fleet::SkHynix ? skHynixSpecs_ : table1Fleet();
}

const FleetSession::Module *
FleetSession::findModule(Manufacturer manufacturer, int densityGbit,
                         char dieRevision, std::uint32_t speedMt) const
{
    for (const Module &module : table1Modules_) {
        const ModuleSpec &spec = *module.spec;
        if (spec.manufacturer == manufacturer &&
            spec.densityGbit == densityGbit &&
            spec.dieRevision == dieRevision &&
            spec.speedMt == speedMt) {
            return &module;
        }
    }
    return nullptr;
}

const Chip &
FleetSession::chip(const Module &module) const
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = chips_.find(module.index);
        if (it != chips_.end())
            return *it->second;
    }
    // Built outside the lock so independent modules hydrate in
    // parallel; a racing builder loses and its chip is discarded.
    auto chip = std::make_unique<Chip>(module.spec->profile(),
                                       config_.geometry, module.seed);
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] =
        chips_.emplace(module.index, std::move(chip));
    if (inserted) {
        ++stats_.chipBuilds;
        obs::Telemetry &tel = obs::global();
        if (tel.metricsOn())
            tel.add(tel.counter("session.chip_builds"));
    }
    return *it->second;
}

const std::vector<PairContext> &
FleetSession::pairContexts(const Module &module) const
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = contexts_.find(module.index);
        if (it != contexts_.end())
            return it->second;
    }
    const Chip &moduleChip = chip(module);
    std::vector<PairContext> contexts;
    Rng rng(hashCombine(module.seed, 0x5041ULL));
    const int banks =
        std::min(config_.banksPerChip, moduleChip.numBanks());
    const int maxLow =
        moduleChip.geometry().subarraysPerBank - 1;
    for (int b = 0; b < banks; ++b) {
        for (int p = 0; p < config_.subarrayPairsPerBank; ++p) {
            PairContext context;
            context.bank = static_cast<BankId>(b);
            context.lowSubarray = static_cast<SubarrayId>(
                rng.below(static_cast<std::uint64_t>(maxLow)));
            contexts.push_back(context);
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    return contexts_.emplace(module.index, std::move(contexts))
        .first->second;
}

const std::vector<std::pair<RowId, RowId>> &
FleetSession::qualifyingPairs(const Module &module,
                              const PairContext &context,
                              const PairQuery &query) const
{
    PairCacheKey key;
    key.module = module.index;
    key.bank = context.bank;
    key.lowSubarray = context.lowSubarray;
    key.query = query;
    obs::Telemetry &tel = obs::global();
    if (tel.metricsOn())
        tel.add(tel.counter("session.pair_lookups"));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.pairLookups;
        const auto it = pairs_.find(key);
        if (it != pairs_.end()) {
            ++stats_.pairHits;
            if (tel.metricsOn())
                tel.add(tel.counter("session.pair_hits"));
            return it->second;
        }
    }
    // The discovery seed depends only on (module, context, query), so
    // every figure asking the same question probes the same pairs and
    // all but the first are cache hits.
    const std::uint64_t seed = hashCombine(
        module.seed,
        hashCombine(query.key(),
                    0xD15CULL + context.bank * 977 +
                        context.lowSubarray * 131));
    auto found = findQualifyingPairs(chip(module), context, query,
                                     config_.probesPerPair,
                                     config_.pairSamplesPerConfig, seed);
    std::lock_guard<std::mutex> lock(mutex_);
    return pairs_.emplace(key, std::move(found)).first->second;
}

Chip
FleetSession::checkoutChip(const Module &module) const
{
    return Chip(module.spec->profile(), config_.geometry, module.seed);
}

Chip
FleetSession::checkoutChip(const ChipProfile &profile,
                           std::uint64_t seed) const
{
    return Chip(profile, config_.geometry, seed);
}

FleetSession::CacheStats
FleetSession::cacheStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace fcdram
