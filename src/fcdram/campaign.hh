/**
 * @file
 * Characterization campaign: reproduces the paper's figure
 * experiments as thin declarative specs over the FleetSession engine,
 * which owns the chips, the memoized pair discovery, and the parallel
 * scheduler. Each method aggregates per-cell success rates into the
 * distribution its figure reports.
 */

#ifndef FCDRAM_FCDRAM_CAMPAIGN_HH
#define FCDRAM_FCDRAM_CAMPAIGN_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fcdram/session.hh"

namespace fcdram {

/** 3x3 (measured-side region x other-side region) heatmap of means. */
using RegionHeatmap = std::array<std::array<double, 3>, 3>;

/**
 * Experiment orchestrator. Each method reproduces one figure's data
 * by running an experiment spec over the session's fleet.
 */
class Campaign
{
  public:
    explicit Campaign(const CampaignConfig &config = CampaignConfig());

    /** Wrap an existing session; chips and discovery are shared. */
    explicit Campaign(std::shared_ptr<FleetSession> session);

    const CampaignConfig &config() const { return session_->config(); }

    /** The underlying engine (shared with other campaigns/tools). */
    const std::shared_ptr<FleetSession> &session() const
    {
        return session_;
    }

    /** SK Hynix entries of the Table-1 fleet. */
    const std::vector<ModuleSpec> &skHynixFleet() const;

    /** Full Table-1 fleet (SK Hynix + Samsung). */
    const std::vector<ModuleSpec> &table1() const;

    /**
     * Fig. 5: coverage of each NRF:NRL activation type across sampled
     * (RF, RL) pairs; one coverage sample per (module, subarray pair).
     */
    std::map<std::string, SampleSet> activationCoverage();

    /** Fig. 7: NOT success-rate distribution vs destination rows. */
    std::map<int, SampleSet> notVsDestRows(
        const OpConditions &cond = OpConditions());

    /** Fig. 8: NOT success rate per NRF:NRL activation type. */
    std::map<std::string, SampleSet> notVsActivationType();

    /**
     * Fig. 9: NOT mean success rate per (source region, destination
     * region); indexed [src][dst].
     */
    RegionHeatmap notRegionHeatmap();

    /**
     * Fig. 10: NOT mean success rate per (destination rows,
     * temperature), restricted to cells with >90% success at 50 C.
     */
    std::map<int, std::map<int, double>>
    notVsTemperature(const std::vector<int> &temperatures);

    /** Fig. 11: NOT distribution per (speed grade, destination rows). */
    std::map<std::uint32_t, std::map<int, SampleSet>> notVsSpeed();

    /**
     * Fig. 12: NOT distribution (one destination row) per
     * density/die-revision group, both manufacturers.
     */
    std::vector<std::pair<std::string, SampleSet>> notByDie();

    /** Fig. 15: logic-op distribution per (op, input count). */
    std::map<BoolOp, std::map<int, SampleSet>> logicVsInputs();

    /**
     * Fig. 16: AND/OR mean success rate vs the number of logic-1
     * operand rows, for the given input count.
     */
    std::map<int, double> logicVsOnes(BoolOp op, int numInputs);

    /** Fig. 17: logic heatmap per op, indexed [compute][reference]. */
    std::map<BoolOp, RegionHeatmap> logicRegionHeatmap();

    /**
     * Fig. 18: per (op, input count), the all-1s/0s class vs the
     * random class distributions.
     */
    std::map<BoolOp, std::map<int, std::pair<SampleSet, SampleSet>>>
    logicDataPattern();

    /**
     * Fig. 19: logic mean success per (op, input count, temperature),
     * restricted to cells with >90% success at 50 C.
     */
    std::map<BoolOp, std::map<int, std::map<int, double>>>
    logicVsTemperature(const std::vector<int> &temperatures);

    /** Fig. 20: logic distribution per (op, speed grade, inputs). */
    std::map<BoolOp,
             std::map<std::uint32_t, std::map<int, SampleSet>>>
    logicVsSpeed();

    /**
     * Fig. 21: logic distribution per (density/die label, op),
     * aggregated over the supported input counts.
     */
    std::map<std::string, std::map<BoolOp, SampleSet>> logicByDie();

  private:
    std::shared_ptr<FleetSession> session_;
};

/** Short label like "SKHynix-4Gb-M" for grouping by die. */
std::string dieLabel(const ModuleSpec &spec);

} // namespace fcdram

#endif // FCDRAM_FCDRAM_CAMPAIGN_HH
