/**
 * @file
 * Characterization campaign: orchestrates the paper's experiments
 * across the simulated Table-1 fleet and aggregates per-cell success
 * rates into the distributions each figure reports.
 */

#ifndef FCDRAM_FCDRAM_CAMPAIGN_HH
#define FCDRAM_FCDRAM_CAMPAIGN_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "config/fleet.hh"
#include "dram/module.hh"
#include "fcdram/analytic.hh"
#include "stats/summary.hh"

namespace fcdram {

/** Campaign-wide knobs. */
struct CampaignConfig
{
    /** Simulated chip dimensions (defaults to a bench-sized chip). */
    GeometryConfig geometry;

    /** Banks sampled per chip. */
    int banksPerChip = 1;

    /** Neighboring subarray pairs sampled per bank. */
    int subarrayPairsPerBank = 4;

    /** Qualifying (RF, RL) pairs kept per chip and configuration. */
    int pairSamplesPerConfig = 8;

    /** Random (RF, RL) probes used to find qualifying pairs. */
    int probesPerPair = 4000;

    /** Analytic engine options (trial budget etc.). */
    AnalyticConfig analytic;

    std::uint64_t seed = 0xF00DULL;

    CampaignConfig();

    /** Scaled-down configuration for unit tests. */
    static CampaignConfig forTests();
};

/** 3x3 (measured-side region x other-side region) heatmap of means. */
using RegionHeatmap = std::array<std::array<double, 3>, 3>;

/**
 * Experiment orchestrator. Each method reproduces one figure's data.
 */
class Campaign
{
  public:
    explicit Campaign(const CampaignConfig &config = CampaignConfig());

    const CampaignConfig &config() const { return config_; }

    /** SK Hynix entries of the Table-1 fleet. */
    std::vector<ModuleSpec> skHynixFleet() const;

    /** Full Table-1 fleet (SK Hynix + Samsung). */
    std::vector<ModuleSpec> table1() const;

    /**
     * Fig. 5: coverage of each NRF:NRL activation type across sampled
     * (RF, RL) pairs; one coverage sample per (module, subarray pair).
     */
    std::map<std::string, SampleSet> activationCoverage();

    /** Fig. 7: NOT success-rate distribution vs destination rows. */
    std::map<int, SampleSet> notVsDestRows(
        const OpConditions &cond = OpConditions());

    /** Fig. 8: NOT success rate per NRF:NRL activation type. */
    std::map<std::string, SampleSet> notVsActivationType();

    /**
     * Fig. 9: NOT mean success rate per (source region, destination
     * region); indexed [src][dst].
     */
    RegionHeatmap notRegionHeatmap();

    /**
     * Fig. 10: NOT mean success rate per (destination rows,
     * temperature), restricted to cells with >90% success at 50 C.
     */
    std::map<int, std::map<int, double>>
    notVsTemperature(const std::vector<int> &temperatures);

    /** Fig. 11: NOT distribution per (speed grade, destination rows). */
    std::map<std::uint32_t, std::map<int, SampleSet>> notVsSpeed();

    /**
     * Fig. 12: NOT distribution (one destination row) per
     * density/die-revision group, both manufacturers.
     */
    std::vector<std::pair<std::string, SampleSet>> notByDie();

    /** Fig. 15: logic-op distribution per (op, input count). */
    std::map<BoolOp, std::map<int, SampleSet>> logicVsInputs();

    /**
     * Fig. 16: AND/OR mean success rate vs the number of logic-1
     * operand rows, for the given input count.
     */
    std::map<int, double> logicVsOnes(BoolOp op, int numInputs);

    /** Fig. 17: logic heatmap per op, indexed [compute][reference]. */
    std::map<BoolOp, RegionHeatmap> logicRegionHeatmap();

    /**
     * Fig. 18: per (op, input count), the all-1s/0s class vs the
     * random class distributions.
     */
    std::map<BoolOp, std::map<int, std::pair<SampleSet, SampleSet>>>
    logicDataPattern();

    /**
     * Fig. 19: logic mean success per (op, input count, temperature),
     * restricted to cells with >90% success at 50 C.
     */
    std::map<BoolOp, std::map<int, std::map<int, double>>>
    logicVsTemperature(const std::vector<int> &temperatures);

    /** Fig. 20: logic distribution per (op, speed grade, inputs). */
    std::map<BoolOp,
             std::map<std::uint32_t, std::map<int, SampleSet>>>
    logicVsSpeed();

    /**
     * Fig. 21: logic distribution per (density/die label, op),
     * aggregated over the supported input counts.
     */
    std::map<std::string, std::map<BoolOp, SampleSet>> logicByDie();

  private:
    /** One sampled subarray-pair context on a chip. */
    struct PairContext
    {
        BankId bank = 0;
        SubarrayId lowSubarray = 0; ///< Pairs with lowSubarray + 1.
    };

    /** Visit one freshly constructed chip per module of @p fleet. */
    void forEachChip(
        const std::vector<ModuleSpec> &fleet,
        const std::function<void(const ModuleSpec &, const Chip &,
                                 std::uint64_t)> &visit);

    /** Sampled subarray pairs for a chip. */
    std::vector<PairContext> samplePairs(const Chip &chip,
                                         std::uint64_t seed) const;

    /**
     * Find (RF, RL) global-row pairs in a pair context matching a
     * predicate on the activation sets.
     */
    std::vector<std::pair<RowId, RowId>> findPairs(
        const Chip &chip, const PairContext &context,
        const std::function<bool(const ActivationSets &)> &predicate,
        int maxPairs, std::uint64_t seed) const;

    CampaignConfig config_;
};

/** Short label like "SKHynix-4Gb-M" for grouping by die. */
std::string dieLabel(const ModuleSpec &spec);

} // namespace fcdram

#endif // FCDRAM_FCDRAM_CAMPAIGN_HH
