/**
 * @file
 * Per-chip analog and row-decoder parameter packs.
 *
 * A ChipProfile captures everything that differs between the DRAM
 * designs the paper tests: manufacturer capability class, die
 * density/revision margin scaling, analog sensing constants, and the
 * hierarchical row-decoder glitch behaviour. The constants are
 * calibrated so that the simulator reproduces the paper's reported
 * average success rates (see DESIGN.md section 2 and EXPERIMENTS.md).
 */

#ifndef FCDRAM_CONFIG_CHIPPROFILE_HH
#define FCDRAM_CONFIG_CHIPPROFILE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "config/timing.hh"

namespace fcdram {

/**
 * Physical distance class of a row relative to the sense-amplifier
 * stripe shared by two neighboring subarrays (paper Section 5.2:
 * thirds of the subarray).
 */
enum class Region : std::uint8_t {
    Close = 0,
    Middle = 1,
    Far = 2,
};

/** Printable name of a region. */
const char *toString(Region region);

/** All three regions, for sweeps. */
inline constexpr Region kAllRegions[] = {Region::Close, Region::Middle,
                                         Region::Far};

/**
 * Analog calibration constants. Voltages are in volts, times in ns.
 * All reliability effects act on a signed sensing/drive margin that is
 * finally passed through a Gaussian noise CDF.
 */
struct AnalogParams
{
    /** Cell capacitance in relative units (only ratios matter). */
    double cellCap = 1.0;

    /** Bitline capacitance in the same units. */
    double bitlineCap = 2.0;

    /** Per-trial sensing noise sigma (V). */
    double senseNoiseSigma = 0.055;

    /** Static per-sense-amplifier offset sigma (V). */
    double saOffsetSigma = 0.045;

    /** Static per-cell threshold offset sigma (V). */
    double cellOffsetSigma = 0.055;

    /**
     * Probability that a sense amplifier structurally fails per
     * simultaneously driven row pair; the failing population grows as
     * 1 - (1-p)^load with the activation load.
     */
    double structuralFailPerPair = 0.0064;

    /**
     * Common-mode penalty (V per V): sensing degrades as the terminal
     * common-mode voltage departs from VDD/2 (the all-1s / one-0
     * worst cases of Observation 14).
     */
    double commonModePenalty = 0.09;

    /**
     * Calibrated sensing asymmetry of the AND-family reference
     * (Observation 12: OR consistently beats AND); scaled by
     * 4/(N+2) so the 2-input gap is ~10% and the 16-input gap ~1%.
     */
    double andFamilyPenalty = 0.055;

    /**
     * Bonus for low-common-mode (OR-family) comparisons, scaled like
     * andFamilyPenalty (the other half of Observation 12).
     */
    double orFamilyBonus = 0.04;

    /** Additive logic-margin bias for die-revision differences (V). */
    double logicBias = 0.0;

    /** Extra margin penalty for cells on the inverted (reference) side. */
    double invertedSidePenalty = 0.003;

    /** NOT drive margin with a single destination row (V). */
    double driveMargin0 = 0.285;

    /** Drive margin loss per additional simultaneously driven row (V). */
    double drivePerRow = 0.0109;

    /**
     * Margin penalty at 100% neighbor-bitline disagreement (V); the
     * data-pattern (coupling) effect of Observation 16.
     */
    double couplingDelta = 0.028;

    /** Margin lost per degree Celsius above 50 C (V / C). */
    double tempCoeff = 0.0001;

    /** Optimal violated-gap interval for the decoder glitch (ns). */
    double latchWindowOptNs = 2.9;

    /** Quadratic margin penalty coefficient around the optimum (V/ns^2). */
    double latchWindowKappa = 0.85;

    /**
     * Additive margin by source/compute-row region (V), indexed
     * Close/Middle/Far. Rows far from the shared stripe couple weakly
     * as sources (Observation 6: Far-Close is the worst corner).
     */
    double srcRegionMargin[3] = {0.040, 0.055, -0.055};

    /** Additive margin by destination/reference-row region (V). */
    double dstRegionMargin[3] = {-0.045, 0.025, 0.080};

    /**
     * Global margin scale for die revision / density differences
     * (Observations 9 and 19). 1.0 is the reference design.
     */
    double marginScale = 1.0;
};

/**
 * Row-decoder capability and glitch behaviour. See
 * dram/rowdecoder.hh for the mechanism; these are the knobs.
 */
struct DecoderParams
{
    /**
     * Chip performs *simultaneous* multi-row activation in neighboring
     * subarrays (SK Hynix behaviour).
     */
    bool simultaneousNeighbor = true;

    /**
     * Chip performs only *sequential* two-row activation in
     * neighboring subarrays (Samsung behaviour: NOT with exactly one
     * destination row, no logic operations).
     */
    bool sequentialNeighborOnly = false;

    /**
     * Chip ignores commands issued with grossly violated timings
     * (Micron behaviour: no multi-row activation at all).
     */
    bool ignoresViolatedCommands = false;

    /** Module supports the N:2N activation pattern. */
    bool supportsN2N = false;

    /**
     * Number of 2-bit predecode stages whose latches can glitch;
     * bounds the per-subarray activation count at 2^stages
     * (4 stages -> up to 16 rows, 3 -> up to 8).
     */
    int latchStages = 4;

    /**
     * Largest number of rows the design can open *simultaneously
     * within one subarray* (the SiMRA capability: up to 32 on
     * SK Hynix designs via the stage latches plus the half-select
     * bit, 2 on Samsung designs, irrelevant on Micron). Expansions
     * beyond the cap do not glitch at all (the second row activates
     * alone), modeling decoders whose higher stages do not latch.
     */
    int maxSameSubarrayRows = 32;

    /**
     * Fraction of (RF, RL) address pairs for which the glitch occurs
     * at all; models internal address scrambling plus decoder timing
     * margins (calibrates total coverage in Fig. 5).
     */
    double coverageGate = 0.82;
};

/**
 * Complete description of one DRAM chip design under test.
 */
struct ChipProfile
{
    Manufacturer manufacturer = Manufacturer::SkHynix;
    int densityGbit = 4;
    char dieRevision = 'M';
    int organization = 8; ///< x4 / x8 / x16 data width.
    SpeedGrade speed{2666};

    AnalogParams analog;
    DecoderParams decoder;

    /** Human-readable "SK Hynix 4Gb M-die x8 2666MT/s" label. */
    std::string label() const;

    /** True if any FCDRAM operation is possible on this design. */
    bool supportsNot() const;

    /** True if simultaneous many-row logic operations are possible. */
    bool supportsLogicOps() const;

    /** Largest supported logic-operation input count (0 if none). */
    int maxLogicInputs() const;

    /**
     * True if the design can simultaneously activate >= 4 rows of one
     * subarray (the SiMRA mechanism: native in-subarray MAJ).
     */
    bool supportsSimra() const;

    /**
     * Largest same-subarray simultaneous activation (the SiMRA
     * row-group size): min(decoder cap, 2^(latchStages + 1), counting
     * the half-select doubling). 0 when the design ignores violated
     * commands.
     */
    int maxSimraRows() const;

    /**
     * Largest AND/OR fan-in realizable as one input-biased MAJ gate:
     * a k-input gate needs k operands, k-1 constants, and one
     * VDD/2 tiebreaker, so k <= maxSimraRows() / 2.
     */
    int maxSimraInputs() const;

    /**
     * Build the calibrated profile for a manufacturer / density / die
     * revision combination from the paper's Table 1.
     */
    static ChipProfile make(Manufacturer mfr, int densityGbit,
                            char dieRevision, int organization,
                            std::uint32_t speedMt);
};

} // namespace fcdram

#endif // FCDRAM_CONFIG_CHIPPROFILE_HH
