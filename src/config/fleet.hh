/**
 * @file
 * The tested-module inventory of the paper's Table 1 plus the Micron
 * modules discussed in Section 7, as simulation configurations.
 */

#ifndef FCDRAM_CONFIG_FLEET_HH
#define FCDRAM_CONFIG_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "config/chipprofile.hh"

namespace fcdram {

/** One row of Table 1: a group of identical modules. */
struct ModuleSpec
{
    Manufacturer manufacturer;
    int numModules;
    int numChips;
    char dieRevision;
    std::string mfrDate;  ///< year-week or "N/A".
    int densityGbit;
    int organization;     ///< x4 / x8.
    std::uint32_t speedMt;

    /** Chip profile for this module group. */
    ChipProfile profile() const;

    /** Chips per module (numChips / numModules). */
    int chipsPerModule() const;
};

/**
 * The 22 SK Hynix + Samsung module groups of Table 1 (256 chips) that
 * the paper's analysis focuses on. Built once and cached; the
 * reference stays valid for the program's lifetime.
 */
const std::vector<ModuleSpec> &table1Fleet();

/**
 * The full 28-module fleet including the Micron modules that show no
 * multi-row activation (Section 7, Limitation 1). Cached like
 * table1Fleet().
 */
const std::vector<ModuleSpec> &fullFleet();

/** Total module count across a fleet. */
int totalModules(const std::vector<ModuleSpec> &fleet);

/** Total chip count across a fleet. */
int totalChips(const std::vector<ModuleSpec> &fleet);

} // namespace fcdram

#endif // FCDRAM_CONFIG_FLEET_HH
