#include "config/chipprofile.hh"

#include <algorithm>
#include <sstream>

namespace fcdram {

const char *
toString(Region region)
{
    switch (region) {
      case Region::Close: return "Close";
      case Region::Middle: return "Middle";
      case Region::Far: return "Far";
    }
    return "Unknown";
}

std::string
ChipProfile::label() const
{
    std::ostringstream oss;
    oss << toString(manufacturer) << " " << densityGbit << "Gb "
        << dieRevision << "-die x" << organization << " "
        << speed.mtPerSec() << "MT/s";
    return oss.str();
}

bool
ChipProfile::supportsNot() const
{
    return decoder.simultaneousNeighbor || decoder.sequentialNeighborOnly;
}

bool
ChipProfile::supportsLogicOps() const
{
    return decoder.simultaneousNeighbor;
}

int
ChipProfile::maxLogicInputs() const
{
    if (!supportsLogicOps())
        return 0;
    return 1 << decoder.latchStages;
}

bool
ChipProfile::supportsSimra() const
{
    return maxSimraRows() >= 4;
}

int
ChipProfile::maxSimraRows() const
{
    if (decoder.ignoresViolatedCommands)
        return 0;
    const int stageLimit = 1 << (decoder.latchStages + 1);
    return std::min(decoder.maxSameSubarrayRows, stageLimit);
}

int
ChipProfile::maxSimraInputs() const
{
    return maxSimraRows() / 2;
}

namespace {

/**
 * Die-revision and density dependent scaling, calibrated against
 * Observations 9 and 19:
 *  - SK Hynix 4Gb: A-die has stronger logic margins; M-die 2-input
 *    AND averages drop substantially (Obs. 19).
 *  - SK Hynix 8Gb: M-die NOT is ~8% better than A-die (Obs. 9) and
 *    marginally better at logic (Obs. 19); M-die supports only up to
 *    8:8 activation (paper footnote 12).
 *  - Samsung: D-die NOT is ~11% below A-die (Obs. 9).
 */
void
applyDieScaling(ChipProfile &profile)
{
    auto &analog = profile.analog;
    auto &decoder = profile.decoder;
    auto scale_noise = [&analog](double factor) {
        analog.senseNoiseSigma *= factor;
        analog.saOffsetSigma *= factor;
        analog.cellOffsetSigma *= factor;
    };
    switch (profile.manufacturer) {
      case Manufacturer::SkHynix:
        if (profile.densityGbit == 4) {
            if (profile.dieRevision == 'A') {
                analog.marginScale = 1.05;
                analog.logicBias = 0.022;
                analog.driveMargin0 = 0.29;
            } else { // M-die: weaker logic margins, supports N:2N.
                analog.marginScale = 0.98;
                analog.logicBias = -0.012;
                scale_noise(1.15);
                analog.driveMargin0 = 0.30;
                decoder.supportsN2N = true;
            }
        } else { // 8 Gb
            if (profile.dieRevision == 'A') {
                analog.marginScale = 0.97;
                analog.logicBias = 0.002;
                scale_noise(1.35);
                analog.driveMargin0 = 0.255;
            } else { // M-die: stronger NOT, only 8:8 activation.
                analog.marginScale = 1.00;
                analog.logicBias = 0.008;
                analog.driveMargin0 = 0.30;
                decoder.latchStages = 3;
            }
        }
        break;
      case Manufacturer::Samsung:
        decoder.simultaneousNeighbor = false;
        decoder.sequentialNeighborOnly = true;
        decoder.supportsN2N = false;
        // Pair activation (Frac/RowClone) works, but the higher
        // decoder stages do not latch: no many-row SiMRA groups.
        decoder.maxSameSubarrayRows = 2;
        if (profile.dieRevision == 'A') {
            analog.marginScale = 1.02;
        } else if (profile.dieRevision == 'D') {
            analog.marginScale = 0.80;
            scale_noise(1.9);
        } else { // F-die
            analog.marginScale = 0.92;
            scale_noise(1.3);
        }
        break;
      case Manufacturer::Micron:
        decoder.simultaneousNeighbor = false;
        decoder.sequentialNeighborOnly = false;
        decoder.ignoresViolatedCommands = true;
        break;
    }
}

} // namespace

ChipProfile
ChipProfile::make(Manufacturer mfr, int densityGbit, char dieRevision,
                  int organization, std::uint32_t speedMt)
{
    ChipProfile profile;
    profile.manufacturer = mfr;
    profile.densityGbit = densityGbit;
    profile.dieRevision = dieRevision;
    profile.organization = organization;
    profile.speed = SpeedGrade(speedMt);
    applyDieScaling(profile);
    return profile;
}

} // namespace fcdram
