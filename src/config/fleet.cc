#include "config/fleet.hh"

#include <cassert>

namespace fcdram {

ChipProfile
ModuleSpec::profile() const
{
    return ChipProfile::make(manufacturer, densityGbit, dieRevision,
                             organization, speedMt);
}

int
ModuleSpec::chipsPerModule() const
{
    assert(numModules > 0);
    return numChips / numModules;
}

const std::vector<ModuleSpec> &
table1Fleet()
{
    using M = Manufacturer;
    // Built once; callers across campaigns, sessions, and benches
    // share the same cached inventory.
    static const std::vector<ModuleSpec> fleet = {
        // Chip Mfr., #Modules, #Chips, Die, Date, Density, Org, MT/s
        {M::SkHynix, 9, 72, 'M', "N/A", 4, 8, 2666},
        {M::SkHynix, 5, 40, 'A', "N/A", 4, 8, 2133},
        {M::SkHynix, 1, 16, 'A', "N/A", 8, 8, 2666},
        {M::SkHynix, 1, 32, 'A', "18-14", 4, 4, 2400},
        {M::SkHynix, 1, 32, 'A', "16-49", 8, 4, 2400},
        {M::SkHynix, 1, 32, 'M', "16-22", 8, 4, 2666},
        {M::Samsung, 1, 8, 'F', "21-02", 4, 8, 2666},
        {M::Samsung, 2, 16, 'D', "21-10", 8, 8, 2133},
        {M::Samsung, 1, 8, 'A', "22-12", 8, 8, 3200},
    };
    return fleet;
}

const std::vector<ModuleSpec> &
fullFleet()
{
    using M = Manufacturer;
    static const std::vector<ModuleSpec> fleet = [] {
        auto extended = table1Fleet();
        // Section 7: six additional Micron modules (24 chips) show
        // neither simultaneous nor sequential neighbor-subarray
        // activation.
        extended.push_back({M::Micron, 3, 12, 'B', "N/A", 8, 8, 2666});
        extended.push_back(
            {M::Micron, 3, 12, 'E', "N/A", 16, 8, 3200});
        return extended;
    }();
    return fleet;
}

int
totalModules(const std::vector<ModuleSpec> &fleet)
{
    int count = 0;
    for (const auto &spec : fleet)
        count += spec.numModules;
    return count;
}

int
totalChips(const std::vector<ModuleSpec> &fleet)
{
    int count = 0;
    for (const auto &spec : fleet)
        count += spec.numChips;
    return count;
}

} // namespace fcdram
