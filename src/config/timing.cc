#include "config/timing.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fcdram {

SpeedGrade::SpeedGrade(std::uint32_t mtPerSec)
    : mtPerSec_(mtPerSec)
{
    if (mtPerSec == 0) {
        throw std::invalid_argument(
            "SpeedGrade: data rate must be positive (MT/s)");
    }
}

double
SpeedGrade::bytesPerNs(int busBytes) const
{
    assert(busBytes > 0);
    // MT/s * bytes/transfer = MB/ms = bytes/ns * 1e-3.
    return static_cast<double>(mtPerSec_) *
           static_cast<double>(busBytes) * 1e-3;
}

Ns
SpeedGrade::tCk() const
{
    // DDR: two transfers per clock; MT/s -> clock MHz is rate/2.
    return 2000.0 / static_cast<double>(mtPerSec_);
}

Cycle
SpeedGrade::cyclesFor(Ns ns) const
{
    const double cycles = ns / tCk();
    const double rounded = std::ceil(cycles - 1e-9);
    return rounded < 1.0 ? 1 : static_cast<Cycle>(rounded);
}

Ns
SpeedGrade::quantizedGapNs(Ns targetNs) const
{
    return static_cast<double>(cyclesFor(targetNs)) * tCk();
}

bool
SpeedGrade::operator==(const SpeedGrade &other) const
{
    return mtPerSec_ == other.mtPerSec_;
}

TimingParams
TimingParams::nominal()
{
    return TimingParams{};
}

} // namespace fcdram
