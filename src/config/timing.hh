/**
 * @file
 * DDR4 timing parameters and speed grades.
 *
 * The FCDRAM mechanisms hinge on *violating* manufacturer-recommended
 * timings (tRAS, tRP): the testing infrastructure can only realize
 * command gaps that are integer multiples of the DRAM clock, so the
 * actual analog interval depends on the module's speed grade. This is
 * the root cause of the paper's non-monotonic speed-rate sensitivity
 * (Observations 8 and 18).
 */

#ifndef FCDRAM_CONFIG_TIMING_HH
#define FCDRAM_CONFIG_TIMING_HH

#include <cstdint>

#include "common/types.hh"

namespace fcdram {

/**
 * A DDR4 speed grade (data rate in mega-transfers per second) and the
 * timing conversions that depend on it.
 */
class SpeedGrade
{
  public:
    /**
     * Construct from a data rate, e.g. 2666 MT/s.
     *
     * @throws std::invalid_argument when @p mtPerSec is 0: every
     *         timing conversion (and the host-copy bandwidth model)
     *         divides by the rate, so a zero rate is rejected at
     *         config load instead of surfacing as a downstream
     *         division by zero.
     */
    explicit SpeedGrade(std::uint32_t mtPerSec = 2666);

    /** Data rate in MT/s. */
    std::uint32_t mtPerSec() const { return mtPerSec_; }

    /** DRAM command clock period in ns (two transfers per clock). */
    Ns tCk() const;

    /**
     * Peak host-copy bandwidth of an x64 DIMM at this rate, in
     * bytes per nanosecond (@p busBytes bytes move per transfer).
     * Strictly positive by construction.
     */
    double bytesPerNs(int busBytes = 8) const;

    /** Number of whole clock cycles needed to span @p ns. */
    Cycle cyclesFor(Ns ns) const;

    /**
     * Shortest realizable command gap that is at least @p targetNs,
     * quantized to whole clock cycles. Violated-timing sequences are
     * issued back-to-back in command slots, so this is the actual
     * analog interval the DRAM circuitry experiences.
     */
    Ns quantizedGapNs(Ns targetNs) const;

    bool operator==(const SpeedGrade &other) const;

  private:
    std::uint32_t mtPerSec_;
};

/**
 * Nominal DDR4 timing parameters in nanoseconds (JEDEC-typical values;
 * the exact datasheet numbers are not load-bearing for the study, only
 * the distinction between respected and violated timings is).
 */
struct TimingParams
{
    Ns tRas = 32.0; ///< ACT to PRE (restore complete).
    Ns tRp = 13.5;  ///< PRE to next ACT (precharge complete).
    Ns tRcd = 13.5; ///< ACT to first RD/WR.
    Ns tWr = 15.0;  ///< Write recovery before PRE.
    Ns tRfc = 350.0; ///< Refresh cycle time.

    /**
     * Gap below which a PRE fails to de-assert the row-decoder latches
     * (the multi-row activation trigger window; the paper targets
     * "<3ns", and the slowest working realization in the fleet is the
     * 4-cycle gap of 2666 MT/s modules, ~3.0ns).
     */
    Ns glitchThreshold = 3.2;

    /**
     * Gap below which an interrupted restore leaves the cell near its
     * charge-sharing voltage (the Frac mechanism).
     */
    Ns fracThreshold = 6.0;

    /**
     * Fixed per-transfer overhead of a host bulk copy (software setup
     * plus the first-access latency a streaming scan cannot hide).
     * Added on top of the bandwidth term of the CPU-baseline cost
     * model.
     */
    Ns hostCopyOverheadNs = 100.0;

    /** Default nominal DDR4 parameters. */
    static TimingParams nominal();
};

/**
 * Target gap used by FCDRAM command sequences for the violated
 * PRE -> ACT (and ACT -> PRE) intervals. The realized interval is
 * SpeedGrade::quantizedGapNs(kViolatedGapTargetNs).
 */
inline constexpr Ns kViolatedGapTargetNs = 2.5;

} // namespace fcdram

#endif // FCDRAM_CONFIG_TIMING_HH
