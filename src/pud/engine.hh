/**
 * @file
 * PuD query executor: runs compiled μprograms on simulated COTS DRAM
 * chips and reports accuracy and analytic cost next to a CPU golden
 * baseline.
 *
 * The engine is the compile -> allocate -> execute pipeline in one
 * place: expressions lower to wide-gate μprograms (pud/compiler.hh),
 * the allocator places gates on qualifying activation pairs with
 * reliability masks (pud/allocator.hh), and the executor drives the
 * DramBender command path gate by gate. Columns outside a gate's
 * reliable mask fall back to the CPU golden model per bit position,
 * optional majority voting (EngineOptions::redundancy) suppresses
 * residual noise on the masked columns, and operand copy-in can run
 * either as host writes or as in-DRAM RowClone from staging rows.
 * Independent gates of one topological wave are batched onto
 * distinct subarray pairs; the analytic latency model overlaps waves
 * across banks while the command bus serializes within a bank.
 *
 * Fleet-scale runs go through FleetSession::runOverFleet, so results
 * are deterministic in the worker count and chips/pair discovery are
 * shared with every other experiment on the session.
 *
 * The engine is the compile/execute core; the public entry point for
 * issuing queries is the prepared-query lifecycle in pud/service.hh
 * (prepare -> bind -> submit -> collect), which caches compiled
 * μprograms and per-module placements across submits, and the
 * concurrent serving tier in serve/server.hh layered on top of it.
 */

#ifndef FCDRAM_PUD_ENGINE_HH
#define FCDRAM_PUD_ENGINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bender/executor.hh"
#include "fcdram/session.hh"
#include "obs/telemetry.hh"
#include "pud/allocator.hh"
#include "pud/compiler.hh"
#include "verify/certify.hh"
#include "verify/pressure.hh"

namespace fcdram::pud {

/**
 * Backend selection policy for query runs. The concrete basis a
 * program lowers to is pud::ComputeBackend; Auto resolves it per
 * chip from the profiled capability.
 */
enum class BackendChoice : std::uint8_t {
    NandNor,  ///< Force the FCDRAM NAND/NOR basis.
    SimraMaj, ///< Force the SiMRA MAJ basis.

    /**
     * Per chip: SimraMaj when the profile supports >= 4-row
     * same-subarray groups (ChipProfile::supportsSimra), else
     * NandNor.
     */
    Auto,
};

/** Printable name of a backend choice. */
const char *toString(BackendChoice choice);

/** How operand values reach the compute rows. */
enum class CopyInMode : std::uint8_t {
    /** Deterministic host write per operand (3 commands). */
    HostWrite,

    /**
     * In-DRAM RowClone from the slot's staging rows (4 commands, no
     * host data movement); columns outside the copy's reliable mask
     * shrink the gate mask accordingly. Falls back to a host write
     * for compute rows without a staging pair.
     */
    RowClone,
};

/**
 * Static-verification policy applied to every derived plan
 * (src/verify/). Verification runs at plan-derivation time inside the
 * PlanCache, so its cost is paid once per (expression, module) and
 * cached with the plan.
 */
enum class VerifyPolicy : std::uint8_t {
    /** Skip verification entirely (no verdicts, no counters). */
    Off,

    /**
     * Verify and cache the verdict (telemetry, pudlint, plan
     * introspection) but never reject: Error-bearing plans still
     * execute.
     */
    Report,

    /**
     * Verify, cache, and reject: QueryService::submit throws
     * verify::VerifyError for any plan carrying Error diagnostics.
     */
    Enforce,
};

/** Printable name of a verify policy. */
const char *toString(VerifyPolicy policy);

/** Execution knobs. */
struct EngineOptions
{
    CompilerOptions compiler;
    AllocatorOptions allocator;

    /**
     * Gate basis queries lower to; overrides compiler.backend. The
     * default Auto picks per chip from the profiled capability
     * (ChipProfile::supportsSimra), so SiMRA-capable designs use the
     * cheaper MAJ basis without explicit opt-in and everything else
     * falls back to NAND/NOR.
     */
    BackendChoice backend = BackendChoice::Auto;

    /**
     * Executions per gate with per-column majority voting; must be
     * odd (a tie on an even count would resolve to 0). 1 runs every
     * gate once; 3 suppresses residual noise failures on masked
     * columns (the acceptance benches use 3). Validated at engine
     * construction (std::invalid_argument on an even or
     * non-positive count).
     */
    int redundancy = 1;

    CopyInMode copyIn = CopyInMode::HostWrite;

    /**
     * Executor strategy for the simulated command path. Results are
     * bit-identical between modes; ScalarReference exists for
     * verification and as the pre-word-parallel throughput baseline
     * in the benches.
     */
    ExecMode execMode = ExecMode::WordParallel;

    /** Salt for the per-run DramBender session seed. */
    std::uint64_t benderSeedSalt = 0x9DULL;

    /**
     * Static plan verification policy. Enforce by default: a plan
     * carrying Error diagnostics (e.g. a forced backend whose MAJ
     * groups exceed the design's capability) is rejected at submit
     * instead of executing with silently wrong or dropped command
     * sequences. Opt out with Report (verify but never reject) or
     * Off.
     */
    VerifyPolicy verify = VerifyPolicy::Enforce;

    /**
     * Telemetry pillars to enable on the process-wide obs registry
     * when the engine is constructed (obs::global().enable, sticky:
     * constructing a second engine never disables a pillar a first
     * one turned on). All-false (the default) leaves the registry
     * untouched.
     */
    obs::TelemetryConfig telemetry;

    /**
     * Submit-time accuracy SLO checked against every derived plan's
     * certificate (verify/certify.hh). A certificate missing either
     * bound reports UPL202 into the plan's verdict, which Enforce
     * rejects and Report annotates. Disabled by default. Only
     * evaluated when the verify policy runs (not Off).
     */
    verify::AccuracySlo slo;

    /**
     * Per-row activation disturbance budget the static pressure
     * analysis (verify/pressure.hh) checks each derived plan against;
     * excesses report UPL201 (Warning) into the plan's verdict.
     */
    verify::PressureBudget pressure;
};

/**
 * Majority-vote accumulator over row readbacks of one gate, stored as
 * bit-sliced counter planes so both accumulation and the majority
 * query run word-parallel. Every trial readback must cover every
 * column: a short readback would otherwise silently count the missing
 * columns as 0-votes, so a length mismatch is a hard error
 * (std::invalid_argument).
 */
class VoteSet
{
  public:
    explicit VoteSet(std::size_t columns) : columns_(columns) {}

    /** @throws std::invalid_argument unless bits covers every column. */
    void add(const BitVector &bits);

    /** Per-column majority of @p trials accumulated readbacks. */
    bool majority(std::size_t col, int trials) const;

    /**
     * Word-parallel majority across every column at once: bit c is
     * set when more than half of @p trials readbacks had it set.
     */
    BitVector majorityBits(int trials) const;

    std::size_t columns() const { return columns_; }

  private:
    std::size_t columns_;

    /** Plane p holds bit p of each column's vote count. */
    std::vector<BitVector> planes_;
};

/** Analytic DRAM command/latency/energy tally. */
struct QueryCost
{
    std::uint64_t commands = 0;
    double latencyNs = 0.0;
    double energyNj = 0.0;

    void add(const QueryCost &other)
    {
        commands += other.commands;
        latencyNs += other.latencyNs;
        energyNj += other.energyNj;
    }
};

/** Result of one query execution on one chip. */
struct QueryResult
{
    /** Hybrid result: DRAM bits on masked columns, CPU elsewhere. */
    BitVector output;

    /** CPU golden-model result. */
    BitVector golden;

    /** Columns of the final value that came from DRAM. */
    BitVector mask;

    /** True if every gate obtained an activation site. */
    bool placed = false;

    /**
     * Masked-column accounting across every executed gate: bits the
     * engine trusted to DRAM, and how many matched the golden model.
     */
    std::size_t checkedBits = 0;
    std::size_t matchingBits = 0;

    /** 100 when every checked bit matched (or none were checked). */
    double accuracyPercent() const
    {
        return checkedBits == 0 ? 100.0
                                : 100.0 *
                                      static_cast<double>(matchingBits) /
                                      static_cast<double>(checkedBits);
    }

    /** Fraction of result columns computed in DRAM. */
    double dramCoverage = 0.0;

    /** Per-query DRAM work (excludes the amortized data load). */
    QueryCost dram;

    /**
     * Command-bus busy time per bank id. Within one query the waves
     * serialize per bank (dram.latencyNs sums the per-wave bank
     * maxima); across the queries of one submitted batch the
     * QueryService interleaving model overlaps these per-bank totals.
     */
    std::map<int, double> bankBusyNs;

    /** One-time residency cost of the input columns. */
    QueryCost load;

    /** Analytic CPU bulk-bitwise baseline for the same query. */
    QueryCost cpuBaseline;

    /** Basis the executed program was lowered to. */
    ComputeBackend backend = ComputeBackend::NandNor;

    int wideOps = 0;
    int notOps = 0;
    int majOps = 0;
    int waves = 0;
};

/** One module's row of a fleet-wide query run. */
struct ModuleQueryStats
{
    std::string label;
    std::size_t moduleIndex = 0;
    QueryResult result;

    /**
     * Certified reliability bounds of the executed plan (the
     * PlacementPlan's cached certificate), when verification ran.
     */
    verify::PlanCertificate certificate;
};

/**
 * Fleet accumulator: per-module rows, appended in module order by
 * FleetSession::runOverFleet (deterministic in the worker count).
 */
struct FleetQueryStats
{
    std::vector<ModuleQueryStats> modules;

    /** runOverFleet fold hook. */
    void mergeFrom(FleetQueryStats &&other);

    std::size_t placedModules() const;
    std::size_t checkedBits() const;
    std::size_t matchingBits() const;

    /** 100 when every checked bit fleet-wide matched golden. */
    double accuracyPercent() const;

    /** Means over placed modules (0 when none placed). */
    double meanCommands() const;
    double meanLatencyNs() const;
    double meanEnergyNj() const;
    double meanCoverage() const;
    double meanCpuLatencyNs() const;
};

/** The PuD query engine over one fleet session. */
class PudEngine
{
  public:
    explicit PudEngine(std::shared_ptr<FleetSession> session,
                       EngineOptions options = EngineOptions());

    const EngineOptions &options() const { return options_; }
    const std::shared_ptr<FleetSession> &session() const
    {
        return session_;
    }

    /** Lower an expression with the engine's compiler options as-is. */
    MicroProgram compile(const ExprPool &pool, ExprId root) const;

    /**
     * Lower an expression for one chip: resolves the backend choice
     * and clamps the gate fan-in to backendCapability(chip).
     */
    MicroProgram compileFor(const ExprPool &pool, ExprId root,
                            const Chip &chip) const;

    /** Concrete basis options().backend resolves to on a design. */
    ComputeBackend resolveBackend(const ChipProfile &profile) const;

    /**
     * The (backend, gate fan-in capability) pair a query resolves to
     * on one chip: the single source of truth for compileFor and the
     * fleet program cache. The capability is decoder-consistent —
     * bounded by the profile *and* the chip geometry (NandNor: the
     * largest N:N neighbor activation, 2^stages; SimraMaj: half the
     * largest same-subarray group) — so clamped programs are always
     * placeable shapes. 0 means no capability (gates fall back per
     * placement).
     */
    std::pair<ComputeBackend, int>
    backendCapability(const Chip &chip) const;

    /**
     * One-shot compile + allocate + execute on a private chip (tests,
     * custom profiles). Production callers hold a PreparedQuery and
     * submit batches through QueryService (src/pud/service.hh).
     */
    QueryResult
    runOnChip(Chip &chip, std::uint64_t seed, const ExprPool &pool,
              ExprId root,
              const std::map<std::string, BitVector> &columns) const;

    /**
     * Place with @p allocator and execute an already compiled
     * program.
     *
     * @throws std::invalid_argument when the chip's execute-time
     *         temperature differs from the temperature the
     *         allocator's reliability masks were derived at (stale
     *         masks must be re-derived, not silently trusted).
     */
    QueryResult
    execute(const MicroProgram &program, const RowAllocator &allocator,
            Chip &chip, std::uint64_t benderSeed,
            const std::map<std::string, BitVector> &columns) const;

    /**
     * Execute a program with an already derived placement (the
     * prepared-query path: QueryService caches the placement in a
     * PlacementPlan and skips re-derivation on warm submits).
     *
     * @param maskTemperature Temperature the placement's reliability
     *        masks were derived at; must match chip.temperature()
     *        (std::invalid_argument otherwise — stale masks must be
     *        re-derived, not silently trusted).
     */
    QueryResult
    execute(const MicroProgram &program, const Placement &placement,
            Celsius maskTemperature, Chip &chip,
            std::uint64_t benderSeed,
            const std::map<std::string, BitVector> &columns) const;

    /** Deterministic random column data for fleet runs. */
    static std::map<std::string, BitVector>
    randomColumns(const std::vector<std::string> &names,
                  std::size_t bits, std::uint64_t seed);

  private:
    std::shared_ptr<FleetSession> session_;
    EngineOptions options_;
};

} // namespace fcdram::pud

#endif // FCDRAM_PUD_ENGINE_HH
