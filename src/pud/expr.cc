#include "pud/expr.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

#include "common/rng.hh"
#include "fcdram/golden.hh"

namespace fcdram::pud {

const char *
toString(ExprKind kind)
{
    switch (kind) {
      case ExprKind::Column:
        return "col";
      case ExprKind::Not:
        return "not";
      case ExprKind::And:
        return "and";
      case ExprKind::Or:
        return "or";
      case ExprKind::Nand:
        return "nand";
      case ExprKind::Nor:
        return "nor";
      case ExprKind::Xor:
        return "xor";
      case ExprKind::Maj:
        return "maj";
    }
    return "?";
}

ExprId
ExprPool::intern(ExprNode node)
{
    const auto key =
        std::make_tuple(node.kind, node.column, node.operands);
    const auto it = index_.find(key);
    if (it != index_.end())
        return it->second;
    const auto id = static_cast<ExprId>(nodes_.size());
    nodes_.push_back(std::move(node));
    index_.emplace(key, id);
    return id;
}

std::vector<ExprId>
ExprPool::canonicalize(std::vector<ExprId> operands, ExprKind flatten,
                       bool keepDuplicates) const
{
    std::vector<ExprId> flat;
    flat.reserve(operands.size());
    for (const ExprId id : operands) {
        assert(id < nodes_.size());
        if (nodes_[id].kind == flatten) {
            const auto &children = nodes_[id].operands;
            flat.insert(flat.end(), children.begin(), children.end());
        } else {
            flat.push_back(id);
        }
    }
    std::sort(flat.begin(), flat.end());
    if (!keepDuplicates)
        flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
    return flat;
}

ExprId
ExprPool::column(const std::string &name)
{
    assert(!name.empty());
    ExprNode node;
    node.kind = ExprKind::Column;
    node.column = name;
    return intern(std::move(node));
}

ExprId
ExprPool::mkNot(ExprId a)
{
    assert(a < nodes_.size());
    const ExprNode &operand = nodes_[a];
    switch (operand.kind) {
      case ExprKind::Not:
        return operand.operands.front();
      case ExprKind::And:
        return mkNand(operand.operands);
      case ExprKind::Or:
        return mkNor(operand.operands);
      case ExprKind::Nand:
        return mkAnd(operand.operands);
      case ExprKind::Nor:
        return mkOr(operand.operands);
      case ExprKind::Column:
      case ExprKind::Xor:
      case ExprKind::Maj:
        break;
    }
    ExprNode node;
    node.kind = ExprKind::Not;
    node.operands = {a};
    return intern(std::move(node));
}

ExprId
ExprPool::mkAnd(std::vector<ExprId> operands)
{
    assert(!operands.empty());
    auto flat = canonicalize(std::move(operands), ExprKind::And,
                             /*keepDuplicates=*/false);
    if (flat.size() == 1)
        return flat.front();
    ExprNode node;
    node.kind = ExprKind::And;
    node.operands = std::move(flat);
    return intern(std::move(node));
}

ExprId
ExprPool::mkOr(std::vector<ExprId> operands)
{
    assert(!operands.empty());
    auto flat = canonicalize(std::move(operands), ExprKind::Or,
                             /*keepDuplicates=*/false);
    if (flat.size() == 1)
        return flat.front();
    ExprNode node;
    node.kind = ExprKind::Or;
    node.operands = std::move(flat);
    return intern(std::move(node));
}

ExprId
ExprPool::mkNand(std::vector<ExprId> operands)
{
    assert(!operands.empty());
    auto flat = canonicalize(std::move(operands), ExprKind::And,
                             /*keepDuplicates=*/false);
    if (flat.size() == 1)
        return mkNot(flat.front());
    ExprNode node;
    node.kind = ExprKind::Nand;
    node.operands = std::move(flat);
    return intern(std::move(node));
}

ExprId
ExprPool::mkNor(std::vector<ExprId> operands)
{
    assert(!operands.empty());
    auto flat = canonicalize(std::move(operands), ExprKind::Or,
                             /*keepDuplicates=*/false);
    if (flat.size() == 1)
        return mkNot(flat.front());
    ExprNode node;
    node.kind = ExprKind::Nor;
    node.operands = std::move(flat);
    return intern(std::move(node));
}

ExprId
ExprPool::mkXor(std::vector<ExprId> operands)
{
    assert(!operands.empty());
    // x ^ x would be constant 0; the pool has no constants, so XOR
    // keeps duplicates and leaves cancellation to the caller.
    auto flat = canonicalize(std::move(operands), ExprKind::Xor,
                             /*keepDuplicates=*/true);
    if (flat.size() == 1)
        return flat.front();
    ExprNode node;
    node.kind = ExprKind::Xor;
    node.operands = std::move(flat);
    return intern(std::move(node));
}

ExprId
ExprPool::mkMaj(std::vector<ExprId> operands)
{
    assert(!operands.empty());
    assert(operands.size() % 2 == 1);
    // Duplicates weight the vote (MAJ(a, a, b) = a), so the operand
    // list is sorted for interning but never deduplicated, and nested
    // MAJs are not flattened (majority is not associative).
    std::sort(operands.begin(), operands.end());
    if (operands.size() == 1)
        return operands.front();
    ExprNode node;
    node.kind = ExprKind::Maj;
    node.operands = std::move(operands);
    return intern(std::move(node));
}

const ExprNode &
ExprPool::node(ExprId id) const
{
    assert(id < nodes_.size());
    return nodes_[id];
}

BitVector
ExprPool::evaluate(ExprId root,
                   const std::map<std::string, BitVector> &columns)
    const
{
    assert(root < nodes_.size());
    std::vector<BitVector> memo(nodes_.size());
    std::vector<bool> done(nodes_.size(), false);

    // Iterative post-order over the DAG (expressions can be deep).
    std::vector<std::pair<ExprId, bool>> stack{{root, false}};
    while (!stack.empty()) {
        const auto [id, expanded] = stack.back();
        stack.pop_back();
        if (done[id])
            continue;
        const ExprNode &n = nodes_[id];
        if (!expanded && n.kind != ExprKind::Column) {
            stack.emplace_back(id, true);
            for (const ExprId operand : n.operands)
                stack.emplace_back(operand, false);
            continue;
        }
        switch (n.kind) {
          case ExprKind::Column:
            memo[id] = columns.at(n.column);
            break;
          case ExprKind::Not:
            memo[id] = ~memo[n.operands.front()];
            break;
          case ExprKind::And:
          case ExprKind::Nand: {
            BitVector acc = memo[n.operands.front()];
            for (std::size_t i = 1; i < n.operands.size(); ++i)
                acc &= memo[n.operands[i]];
            memo[id] = n.kind == ExprKind::Nand ? ~acc : acc;
            break;
          }
          case ExprKind::Or:
          case ExprKind::Nor: {
            BitVector acc = memo[n.operands.front()];
            for (std::size_t i = 1; i < n.operands.size(); ++i)
                acc |= memo[n.operands[i]];
            memo[id] = n.kind == ExprKind::Nor ? ~acc : acc;
            break;
          }
          case ExprKind::Xor: {
            BitVector acc = memo[n.operands.front()];
            for (std::size_t i = 1; i < n.operands.size(); ++i)
                acc ^= memo[n.operands[i]];
            memo[id] = acc;
            break;
          }
          case ExprKind::Maj: {
            // mkMaj guarantees an odd operand count, so the
            // word-parallel golden majority applies directly (memo
            // entries referenced in place, no operand copies).
            std::vector<const BitVector *> votes;
            votes.reserve(n.operands.size());
            for (const ExprId operand : n.operands)
                votes.push_back(&memo[operand]);
            memo[id] = goldenMaj(votes);
            break;
          }
        }
        done[id] = true;
    }
    return memo[root];
}

std::vector<std::string>
ExprPool::columnsOf(ExprId root) const
{
    assert(root < nodes_.size());
    std::vector<std::string> names;
    std::vector<bool> visited(nodes_.size(), false);
    std::vector<ExprId> stack{root};
    while (!stack.empty()) {
        const ExprId id = stack.back();
        stack.pop_back();
        if (visited[id])
            continue;
        visited[id] = true;
        const ExprNode &n = nodes_[id];
        if (n.kind == ExprKind::Column)
            names.push_back(n.column);
        for (const ExprId operand : n.operands)
            stack.push_back(operand);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

std::uint64_t
ExprPool::hashOf(ExprId root) const
{
    assert(root < nodes_.size());
    std::vector<std::uint64_t> memo(nodes_.size(), 0);
    std::vector<bool> done(nodes_.size(), false);

    // Iterative post-order over the DAG (expressions can be deep).
    std::vector<std::pair<ExprId, bool>> stack{{root, false}};
    while (!stack.empty()) {
        const auto [id, expanded] = stack.back();
        stack.pop_back();
        if (done[id])
            continue;
        const ExprNode &n = nodes_[id];
        if (!expanded && n.kind != ExprKind::Column) {
            stack.emplace_back(id, true);
            for (const ExprId operand : n.operands)
                stack.emplace_back(operand, false);
            continue;
        }
        std::uint64_t h = splitMix64(
            0x9E3779B97F4A7C15ULL +
            static_cast<std::uint64_t>(n.kind));
        if (n.kind == ExprKind::Column) {
            h = hashCombine(h, hashString(n.column));
        } else {
            std::vector<std::uint64_t> children;
            children.reserve(n.operands.size());
            for (const ExprId operand : n.operands)
                children.push_back(memo[operand]);
            // Operand lists of commutative gates are sorted by
            // ExprId, which depends on node creation order; sorting
            // the child hashes instead makes the hash canonical
            // across pools. Only NOT is order-sensitive (one child).
            if (n.kind != ExprKind::Not)
                std::sort(children.begin(), children.end());
            for (const std::uint64_t child : children)
                h = hashCombine(h, child);
        }
        memo[id] = h;
        done[id] = true;
    }
    return memo[root];
}

ExprId
ExprPool::import(const ExprPool &from, ExprId root)
{
    assert(root < from.nodes_.size());
    std::vector<ExprId> memo(from.nodes_.size(), kNoExpr);

    std::vector<std::pair<ExprId, bool>> stack{{root, false}};
    while (!stack.empty()) {
        const auto [id, expanded] = stack.back();
        stack.pop_back();
        if (memo[id] != kNoExpr)
            continue;
        const ExprNode &n = from.nodes_[id];
        if (!expanded && n.kind != ExprKind::Column) {
            stack.emplace_back(id, true);
            for (const ExprId operand : n.operands)
                stack.emplace_back(operand, false);
            continue;
        }
        std::vector<ExprId> operands;
        operands.reserve(n.operands.size());
        for (const ExprId operand : n.operands)
            operands.push_back(memo[operand]);
        switch (n.kind) {
          case ExprKind::Column:
            memo[id] = column(n.column);
            break;
          case ExprKind::Not:
            memo[id] = mkNot(operands.front());
            break;
          case ExprKind::And:
            memo[id] = mkAnd(std::move(operands));
            break;
          case ExprKind::Or:
            memo[id] = mkOr(std::move(operands));
            break;
          case ExprKind::Nand:
            memo[id] = mkNand(std::move(operands));
            break;
          case ExprKind::Nor:
            memo[id] = mkNor(std::move(operands));
            break;
          case ExprKind::Xor:
            memo[id] = mkXor(std::move(operands));
            break;
          case ExprKind::Maj:
            memo[id] = mkMaj(std::move(operands));
            break;
        }
    }
    return memo[root];
}

std::string
ExprPool::toString(ExprId root) const
{
    const ExprNode &n = node(root);
    if (n.kind == ExprKind::Column)
        return n.column;
    std::ostringstream oss;
    oss << "(" << pud::toString(n.kind);
    for (const ExprId operand : n.operands)
        oss << " " << toString(operand);
    oss << ")";
    return oss.str();
}

} // namespace fcdram::pud
