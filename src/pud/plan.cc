#include "pud/plan.hh"

#include <cassert>
#include <limits>
#include <sstream>

#include "obs/telemetry.hh"
#include "verify/verifier.hh"

namespace fcdram::pud {

namespace {

/** Mirror a PlanCacheStats increment into the metrics registry. */
void
note(const char *name)
{
    obs::Telemetry &tel = obs::global();
    if (tel.metricsOn())
        tel.add(tel.counter(name));
}

} // namespace

PlanCacheStats
PlanCacheStats::operator-(const PlanCacheStats &other) const
{
    PlanCacheStats delta;
    delta.lookups = lookups - other.lookups;
    delta.hits = hits - other.hits;
    delta.misses = misses - other.misses;
    delta.invalidations = invalidations - other.invalidations;
    delta.compiles = compiles - other.compiles;
    delta.placements = placements - other.placements;
    delta.allocatorBuilds = allocatorBuilds - other.allocatorBuilds;
    return delta;
}

PlanCache::PlanCache(const PudEngine &engine) : engine_(&engine) {}

PlanCache::PlanShard &
PlanCache::shardOf(std::uint64_t exprHash, std::size_t module)
{
    // hashCombine-style mix so (expression, module) pairs spread even
    // when expression hashes share low bits.
    const std::uint64_t mixed =
        exprHash ^
        (static_cast<std::uint64_t>(module) + 0x9e3779b97f4a7c15ULL +
         (exprHash << 6) + (exprHash >> 2));
    return planShards_[mixed % kPlanShards];
}

std::shared_ptr<const MicroProgram>
PlanCache::programFor(std::uint64_t exprHash, const ExprPool &pool,
                      ExprId root, const Chip &chip,
                      ComputeBackend backend, int capability)
{
    const auto key = std::make_tuple(
        exprHash, static_cast<std::uint8_t>(backend), capability);
    {
        const std::shared_lock<std::shared_mutex> lock(programMutex_);
        const auto it = programs_.find(key);
        if (it != programs_.end())
            return it->second;
    }
    // Compile outside the lock: concurrent fleet workers may race on
    // the same shape, in which case both derive the identical program
    // (compilation is pure) and the second insert is a no-op.
    auto program = [&] {
        obs::Span span(obs::global(), "plan.compile");
        span.arg("expr", exprHash);
        return std::make_shared<const MicroProgram>(
            engine_->compileFor(pool, root, chip));
    }();
    bool inserted = false;
    std::shared_ptr<const MicroProgram> published;
    {
        const std::unique_lock<std::shared_mutex> lock(programMutex_);
        const auto [it, fresh] = programs_.emplace(key, program);
        inserted = fresh;
        published = it->second;
    }
    if (inserted) {
        const std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.compiles;
        note("plancache.compiles");
    }
    return published;
}

std::shared_ptr<const RowAllocator>
PlanCache::allocatorFor(const FleetSession::Module &module,
                        Celsius temperature)
{
    const std::lock_guard<std::mutex> lock(allocatorMutex_);
    const auto key = std::make_pair(module.index, temperature);
    const auto it = allocators_.find(key);
    if (it != allocators_.end())
        return it->second;

    // One live allocator per module: entries at other temperatures
    // are stale (their plans invalidate lazily) and would otherwise
    // accumulate forever under drifting setTemperature. Shared
    // ownership keeps an evicted allocator alive for any placement
    // still running against it.
    const auto begin = allocators_.lower_bound(
        {module.index, std::numeric_limits<Celsius>::lowest()});
    auto end = begin;
    while (end != allocators_.end() &&
           end->first.first == module.index)
        ++end;
    allocators_.erase(begin, end);

    // Slot discovery inside the allocator is lazy (and internally
    // synchronized), so construction under the cache lock is cheap;
    // the expensive mask derivation happens on first use from the
    // placement path.
    auto allocator = [&] {
        obs::Span span(obs::global(), "plan.allocator_build");
        span.arg("module",
                 static_cast<std::uint64_t>(module.index));
        return std::make_shared<const RowAllocator>(
            *engine_->session(), module, engine_->options().allocator,
            temperature);
    }();
    {
        const std::lock_guard<std::mutex> statsLock(statsMutex_);
        ++stats_.allocatorBuilds;
        note("plancache.allocator_builds");
    }
    allocators_.emplace(key, allocator);
    return allocator;
}

std::shared_ptr<const PlacementPlan>
PlanCache::plan(std::uint64_t exprHash, const ExprPool &pool,
                ExprId root, const FleetSession::Module &module,
                Celsius temperature)
{
    const auto key = std::make_pair(exprHash, module.index);
    PlanShard &shard = shardOf(exprHash, module.index);
    bool stale = false;
    std::shared_ptr<const PlacementPlan> hit;
    {
        // Warm path: shared lock only, so concurrent warm submits
        // never serialize on the memoization map.
        const std::shared_lock<std::shared_mutex> lock(shard.mutex);
        const auto it = shard.plans.find(key);
        if (it != shard.plans.end()) {
            if (it->second->temperature == temperature)
                hit = it->second;
            else
                stale = true;
        }
    }
    if (hit) {
        // lookups is bumped together with its hit/miss
        // classification so hits + misses == lookups holds at every
        // instant (QueryService asserts it at collect).
        const std::lock_guard<std::mutex> statsLock(statsMutex_);
        ++stats_.lookups;
        ++stats_.hits;
        note("plancache.lookups");
        note("plancache.hits");
        return hit;
    }

    const Chip &chip = engine_->session()->chip(module);
    const auto [backend, capability] =
        engine_->backendCapability(chip);
    const std::shared_ptr<const MicroProgram> program =
        programFor(exprHash, pool, root, chip, backend, capability);
    const std::shared_ptr<const RowAllocator> allocator =
        allocatorFor(module, temperature);
    assert(allocator->maskTemperature() == temperature);

    auto plan = std::make_shared<PlacementPlan>();
    plan->program = program;
    {
        obs::Span span(obs::global(), "plan.place");
        span.arg("expr", exprHash);
        span.arg("module",
                 static_cast<std::uint64_t>(module.index));
        plan->placement = allocator->place(*program);
    }
    plan->backend = backend;
    plan->capability = capability;
    plan->temperature = temperature;
    plan->exprHash = exprHash;
    plan->moduleIndex = module.index;

    if (engine_->options().verify != VerifyPolicy::Off) {
        // Verify at derivation time so warm submits pay nothing; the
        // verdict rides the cached plan. Masks were derived at
        // `temperature` and the service executes the plan at the same
        // temperature (stale plans re-derive), so both sides of the
        // UPL009 check are `temperature` here.
        obs::Span span(obs::global(), "plan.verify");
        span.arg("expr", exprHash);
        span.arg("module", static_cast<std::uint64_t>(module.index));
        const bool rowClone =
            engine_->options().copyIn == CopyInMode::RowClone;
        plan->verification =
            verify::verifyPlan(*program, plan->placement, chip,
                               temperature, temperature, rowClone);
        obs::Telemetry &tel = obs::global();

        // Certify + pressure ride the same derivation: the abstract
        // interpretation over the placed dataflow (nested span) and
        // the static activation census, both cached on the plan.
        {
            obs::Span certifySpan(obs::global(), "plan.certify");
            certifySpan.arg("expr", exprHash);
            certifySpan.arg("module",
                            static_cast<std::uint64_t>(module.index));
            const double startUs = obs::Telemetry::nowUs();
            plan->certificate = verify::certifyPlan(
                *program, plan->placement, chip, temperature,
                engine_->options().redundancy, rowClone);
            plan->pressure = verify::analyzeActivationPressure(
                *program, plan->placement, chip,
                engine_->options().redundancy, rowClone,
                engine_->options().pressure, plan->verification);
            if (tel.metricsOn()) {
                tel.add(tel.counter("verify.certified_plans"));
                // Wall-clock observations are gated behind the
                // wallClock pillar: they would break the
                // byte-identical metrics contract of the
                // determinism-checked paths.
                if (tel.wallClockOn()) {
                    tel.observe(
                        tel.histogram("verify.certify_ns",
                                      {1e3, 1e4, 1e5, 1e6, 1e7}),
                        (obs::Telemetry::nowUs() - startUs) * 1e3);
                }
            }
        }

        const verify::AccuracySlo &slo = engine_->options().slo;
        if (slo.enabled() && !plan->certificate.meets(slo)) {
            std::ostringstream message;
            message << "certified expectedAccuracy "
                    << plan->certificate.expectedAccuracy
                    << " (SLO min " << slo.minExpectedAccuracy
                    << "), worst column "
                    << plan->certificate.worstColumn
                    << " error bound "
                    << plan->certificate.worstColumnErrorBound
                    << " (SLO max " << slo.maxColumnErrorBound
                    << ") at redundancy "
                    << plan->certificate.redundancy;
            plan->verification.report("UPL202", "plan",
                                      message.str());
        }

        if (tel.metricsOn()) {
            const verify::DiagnosticSink &verdict =
                plan->verification;
            tel.add(tel.counter("verify.plans"));
            tel.add(tel.counter(verdict.hasErrors()
                                    ? "verify.error_plans"
                                    : "verify.clean_plans"));
            if (verdict.errors() != 0)
                tel.add(tel.counter("verify.errors"),
                        verdict.errors());
            if (verdict.warnings() != 0)
                tel.add(tel.counter("verify.warnings"),
                        verdict.warnings());
            if (verdict.notes() != 0)
                tel.add(tel.counter("verify.notes"),
                        verdict.notes());
        }
    }

    {
        // Overwrite on a publish race: both racers derived the
        // identical immutable plan, so last-writer-wins is benign.
        const std::unique_lock<std::shared_mutex> lock(shard.mutex);
        shard.plans[key] = plan;
    }

    const std::lock_guard<std::mutex> statsLock(statsMutex_);
    ++stats_.lookups;
    ++stats_.misses;
    ++stats_.placements;
    note("plancache.lookups");
    note("plancache.misses");
    note("plancache.placements");
    if (stale) {
        ++stats_.invalidations;
        note("plancache.invalidations");
    }
    return plan;
}

PlanCacheStats
PlanCache::stats() const
{
    const std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

} // namespace fcdram::pud
