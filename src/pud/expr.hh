/**
 * @file
 * Expression layer of the Processing-using-DRAM (PuD) query engine: a
 * small hash-consed AST over named bit-vector columns with
 * AND/OR/NOT/NAND/NOR/XOR nodes.
 *
 * Expressions are built through an interning pool, so structurally
 * equal subexpressions share one node and the compiler gets common
 * subexpression elimination for free. The builders canonicalize on
 * construction: associative gates are flattened (AND(AND(a,b),c) ->
 * AND(a,b,c), the shape the wide multi-input DRAM gates want),
 * commutative operand lists are sorted and deduplicated, double
 * negation cancels, and NOT pushes into AND/OR/NAND/NOR (De Morgan
 * between a gate and its free inverted twin: the DRAM substrate
 * computes NAND/NOR on the reference rows of the same activation that
 * computes AND/OR).
 */

#ifndef FCDRAM_PUD_EXPR_HH
#define FCDRAM_PUD_EXPR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bitvector.hh"

namespace fcdram::pud {

/** Node kind of a query expression. */
enum class ExprKind : std::uint8_t {
    Column, ///< Named input bit-vector (one bit per record).
    Not,
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Maj, ///< Bitwise majority over an odd number of operands.
};

/** Printable name of an expression kind. */
const char *toString(ExprKind kind);

/** Handle on an interned expression node (index into its pool). */
using ExprId = std::uint32_t;

/** Sentinel for "no expression". */
inline constexpr ExprId kNoExpr = static_cast<ExprId>(-1);

/** One interned expression node. */
struct ExprNode
{
    ExprKind kind = ExprKind::Column;

    /** Column name (Column nodes only). */
    std::string column;

    /**
     * Operand node ids. Sorted (and for idempotent kinds deduplicated)
     * for commutative kinds; exactly one entry for Not.
     */
    std::vector<ExprId> operands;
};

/**
 * Interning pool and builder for query expressions. All builders
 * canonicalize, so two semantically-identically-built expressions get
 * the same ExprId and the DAG below them is shared.
 */
class ExprPool
{
  public:
    /** Named input column. */
    ExprId column(const std::string &name);

    /**
     * Negation. Canonicalizes: NOT(NOT(x)) = x, NOT(AND) = NAND,
     * NOT(OR) = NOR, NOT(NAND) = AND, NOT(NOR) = OR.
     */
    ExprId mkNot(ExprId a);

    /** N-input AND; nested ANDs are flattened. @pre !operands.empty() */
    ExprId mkAnd(std::vector<ExprId> operands);

    /** N-input OR; nested ORs are flattened. @pre !operands.empty() */
    ExprId mkOr(std::vector<ExprId> operands);

    /** NOT(AND(operands)); nested ANDs flatten into the operand list. */
    ExprId mkNand(std::vector<ExprId> operands);

    /** NOT(OR(operands)); nested ORs flatten into the operand list. */
    ExprId mkNor(std::vector<ExprId> operands);

    /** N-input XOR (parity); nested XORs are flattened. */
    ExprId mkXor(std::vector<ExprId> operands);

    /**
     * Bitwise majority over an odd number of operands (MAJ3, MAJ5,
     * ...): the SiMRA-native gate, which the NAND/NOR basis expands
     * into its sum-of-products form. Operands are sorted but kept
     * (duplicates weight the vote); a single operand collapses to
     * itself. @pre operands.size() odd
     */
    ExprId mkMaj(std::vector<ExprId> operands);

    /** Binary conveniences. */
    ExprId mkAnd(ExprId a, ExprId b) { return mkAnd({a, b}); }
    ExprId mkOr(ExprId a, ExprId b) { return mkOr({a, b}); }
    ExprId mkXor(ExprId a, ExprId b) { return mkXor({a, b}); }

    /** Interned node. @pre id < size() */
    const ExprNode &node(ExprId id) const;

    /** Number of interned nodes. */
    std::size_t size() const { return nodes_.size(); }

    /**
     * CPU golden-model evaluation of @p root over the given column
     * values. All columns referenced by the expression must be
     * present and of equal size.
     */
    BitVector evaluate(ExprId root,
                       const std::map<std::string, BitVector> &columns)
        const;

    /** Sorted unique names of the columns @p root reads. */
    std::vector<std::string> columnsOf(ExprId root) const;

    /**
     * Canonical structural hash of @p root: independent of the pool
     * the expression was built in and of node creation order
     * (commutative operand lists hash as sorted multisets of child
     * hashes, so AND(a, b) built in either order hashes equal). The
     * prepared-query plan caches key on this content hash.
     */
    std::uint64_t hashOf(ExprId root) const;

    /**
     * Deep-copy @p root from another pool into this one, re-interning
     * every node through the canonicalizing builders; a PreparedQuery
     * uses it to own its expression without tying the caller's pool
     * lifetime. Importing from this pool itself is the identity.
     */
    ExprId import(const ExprPool &from, ExprId root);

    /** Render as a prefix-notation string (for tests and logs). */
    std::string toString(ExprId root) const;

  private:
    ExprId intern(ExprNode node);

    /**
     * Canonical operand list of a commutative gate: operands of kind
     * @p flatten are replaced by their children, then the list is
     * sorted and (unless @p keepDuplicates) deduplicated.
     */
    std::vector<ExprId> canonicalize(std::vector<ExprId> operands,
                                     ExprKind flatten,
                                     bool keepDuplicates) const;

    std::vector<ExprNode> nodes_;
    std::map<std::tuple<ExprKind, std::string, std::vector<ExprId>>,
             ExprId>
        index_;
};

} // namespace fcdram::pud

#endif // FCDRAM_PUD_EXPR_HH
