/**
 * @file
 * PuD query compiler: lowers an expression DAG to a μprogram of the
 * FCDRAM operation primitives the substrate executes natively —
 * operand copy-in, N-input AND/OR wide gates (with the inverted
 * NAND/NOR result available for free on the reference rows of the
 * same activation), and cross-subarray NOT.
 *
 * The compiler fuses associative gate trees into wide gates of up to
 * CompilerOptions::maxGateInputs inputs (the paper demonstrates
 * 16-input operations on SK Hynix chips), reuses common
 * subexpressions (one μop per unique gate), decomposes XOR into the
 * functionally-complete basis as
 * XOR(a, b) = AND(OR(a, b), NAND(a, b)) — where the NAND is the free
 * reference-side twin of AND(a, b) — and assigns every μop a
 * topological wave so independent gates can be batched onto distinct
 * subarray pairs by the executor.
 */

#ifndef FCDRAM_PUD_COMPILER_HH
#define FCDRAM_PUD_COMPILER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "pud/expr.hh"

namespace fcdram::pud {

/**
 * Compute backend a query lowers to: which native substrate
 * primitive realizes the AND/OR gates of the expression DAG.
 */
enum class ComputeBackend : std::uint8_t {
    /**
     * The FCDRAM basis (HPCA'24): cross-subarray N:N simultaneous
     * activation against a constants + Frac reference, with the
     * inverted NAND/NOR result free on the reference rows.
     */
    NandNor,

    /**
     * The SiMRA basis (simultaneous many-row activation, Yüksel et
     * al. 2024): 4-32 rows of *one* subarray charge-share a bitline
     * and restore its majority, giving native MAJ; AND/OR become
     * input-biased MAJ gates (Buddy-RAM lowering) with balanced
     * constant rows and one Frac tiebreaker. No free inverted twin:
     * NAND/NOR pay an explicit NOT.
     */
    SimraMaj,
};

/** Printable name of a compute backend. */
const char *toString(ComputeBackend backend);

/** Compilation knobs. */
struct CompilerOptions
{
    /**
     * Widest gate the compiler may emit. 16 is the paper's maximum
     * demonstrated input count; the allocator additionally clamps to
     * the target design's capability. Setting 2 degenerates to a
     * classic Ambit-style 2-input gate tree (the fusion ablation).
     * On the SimraMaj backend a k-input gate occupies a 2k-row
     * activation group, so callers clamp this to
     * ChipProfile::maxSimraInputs().
     */
    int maxGateInputs = 16;

    /** Gate basis the DAG lowers to. */
    ComputeBackend backend = ComputeBackend::NandNor;
};

/** Handle on a μprogram value (virtual register). */
using ValueId = std::uint32_t;

/** Sentinel for "no value". */
inline constexpr ValueId kNoValue = static_cast<ValueId>(-1);

/** μop kinds the executor realizes on the DRAM substrate. */
enum class MicroOpKind : std::uint8_t {
    Load, ///< Materialize a named column (copy-in to a compute row).
    Wide, ///< N-input AND/OR gate (+ free NAND/NOR reference twin).
    Not,  ///< Cross-subarray NOT through the shared sense amps.
    Maj,  ///< In-subarray SiMRA majority over an activation group.
};

/** One μop of a compiled query. */
struct MicroOp
{
    MicroOpKind kind = MicroOpKind::Wide;

    /**
     * Charge-sharing family of a Wide gate: BoolOp::And or BoolOp::Or
     * (NAND/NOR are not separate executions — they are the reference
     * side of the corresponding And/Or gate).
     */
    BoolOp family = BoolOp::And;

    /** Source column name (Load only). */
    std::string column;

    /** Operand values (Wide: N >= 2 inputs; Not: exactly one). */
    std::vector<ValueId> inputs;

    /**
     * Direct result: the AND/OR read from the compute rows (Wide),
     * the negated value (Not), or the materialized column (Load).
     * kNoValue when only the reference side is consumed.
     */
    ValueId computeValue = kNoValue;

    /**
     * Free inverted result read from the reference rows (Wide only):
     * NAND for the And family, NOR for the Or family. kNoValue when
     * unused.
     */
    ValueId referenceValue = kNoValue;

    /**
     * Topological wave: 0 for loads, 1 + max(producer waves)
     * otherwise. μops sharing a wave are mutually independent and can
     * run batched on distinct subarray pairs.
     */
    int wave = 0;

    /**
     * Maj only: all-1s / all-0s constant rows in the activation
     * group. The imbalance biases the majority (AND: zeros dominate
     * by width-1; OR: ones; pure MAJ: balanced), and one extra
     * balanced pair pads odd remainders of the power-of-two group.
     */
    int constantOnes = 0;
    int constantZeros = 0;

    /** Maj only: Frac-initialized VDD/2 tiebreaker rows (>= 1). */
    int neutralRows = 0;

    /**
     * Maj only: total simultaneously activated rows
     * (inputs + constants + neutrals; a power of two).
     */
    int activatedRows = 0;

    /** Gate width (Wide/Maj: operand count; otherwise 1). */
    int width() const
    {
        return kind == MicroOpKind::Wide || kind == MicroOpKind::Maj
                   ? static_cast<int>(inputs.size())
                   : 1;
    }
};

/** A compiled query: μops in topological order. */
struct MicroProgram
{
    std::vector<MicroOp> ops;

    /** Number of virtual values the ops define. */
    std::uint32_t numValues = 0;

    /** Value holding the query result. */
    ValueId result = kNoValue;

    /** 1 + the largest wave of any op. */
    int numWaves = 0;

    /** Basis the program was lowered to. */
    ComputeBackend backend = ComputeBackend::NandNor;

    /** Op counts by kind. */
    int loadOps() const;
    int wideOps() const;
    int notOps() const;
    int majOps() const;

    /** Largest Wide/Maj gate width (0 if none). */
    int maxFanIn() const;
};

/** Lower an expression DAG to a μprogram. */
class Compiler
{
  public:
    explicit Compiler(CompilerOptions options = CompilerOptions());

    const CompilerOptions &options() const { return options_; }

    MicroProgram compile(const ExprPool &pool, ExprId root) const;

  private:
    CompilerOptions options_;
};

/**
 * CPU golden-model evaluation of every μprogram value. Used by the
 * executor both as the per-column fallback for unreliable bit
 * positions and as the accuracy reference.
 *
 * @return One BitVector per ValueId.
 */
std::vector<BitVector>
goldenValues(const MicroProgram &program,
             const std::map<std::string, BitVector> &columns);

} // namespace fcdram::pud

#endif // FCDRAM_PUD_COMPILER_HH
