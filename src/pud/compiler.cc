#include "pud/compiler.hh"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>

namespace fcdram::pud {

int
MicroProgram::loadOps() const
{
    return static_cast<int>(std::count_if(
        ops.begin(), ops.end(), [](const MicroOp &op) {
            return op.kind == MicroOpKind::Load;
        }));
}

int
MicroProgram::wideOps() const
{
    return static_cast<int>(std::count_if(
        ops.begin(), ops.end(), [](const MicroOp &op) {
            return op.kind == MicroOpKind::Wide;
        }));
}

int
MicroProgram::notOps() const
{
    return static_cast<int>(std::count_if(
        ops.begin(), ops.end(), [](const MicroOp &op) {
            return op.kind == MicroOpKind::Not;
        }));
}

int
MicroProgram::majOps() const
{
    return static_cast<int>(std::count_if(
        ops.begin(), ops.end(), [](const MicroOp &op) {
            return op.kind == MicroOpKind::Maj;
        }));
}

int
MicroProgram::maxFanIn() const
{
    int widest = 0;
    for (const MicroOp &op : ops) {
        if (op.kind == MicroOpKind::Wide ||
            op.kind == MicroOpKind::Maj)
            widest = std::max(widest, op.width());
    }
    return widest;
}

const char *
toString(ComputeBackend backend)
{
    switch (backend) {
      case ComputeBackend::NandNor: return "nand-nor";
      case ComputeBackend::SimraMaj: return "simra-maj";
    }
    return "?";
}

namespace {

/**
 * Lowering state. Gates are memoized on (family, sorted operand
 * values), so a NAND over the same operands as an existing AND
 * attaches its value to that gate's reference side instead of
 * emitting a second execution, and identical gates reached through
 * different expression paths collapse to one μop.
 */
class Lowering
{
  public:
    Lowering(const ExprPool &pool, const CompilerOptions &options)
        : pool_(pool), options_(options)
    {
        assert(options_.maxGateInputs >= 2);
    }

    MicroProgram run(ExprId root)
    {
        program_.backend = options_.backend;
        program_.result = lower(root);
        assignWaves();
        program_.numValues = nextValue_;
        return std::move(program_);
    }

  private:
    ValueId newValue() { return nextValue_++; }

    ValueId lower(ExprId id)
    {
        const auto memo = exprMemo_.find(id);
        if (memo != exprMemo_.end())
            return memo->second;
        const ExprNode &node = pool_.node(id);
        ValueId value = kNoValue;
        switch (node.kind) {
          case ExprKind::Column:
            value = lowerColumn(node.column);
            break;
          case ExprKind::Not:
            value = lowerNot(lower(node.operands.front()));
            break;
          case ExprKind::And:
            value = reduce(BoolOp::And, lowerAll(node.operands),
                           /*invert=*/false);
            break;
          case ExprKind::Or:
            value = reduce(BoolOp::Or, lowerAll(node.operands),
                           /*invert=*/false);
            break;
          case ExprKind::Nand:
            value = reduce(BoolOp::And, lowerAll(node.operands),
                           /*invert=*/true);
            break;
          case ExprKind::Nor:
            value = reduce(BoolOp::Or, lowerAll(node.operands),
                           /*invert=*/true);
            break;
          case ExprKind::Xor:
            value = lowerXor(lowerAll(node.operands));
            break;
          case ExprKind::Maj:
            value = lowerMaj(lowerAll(node.operands));
            break;
        }
        exprMemo_.emplace(id, value);
        return value;
    }

    std::vector<ValueId> lowerAll(const std::vector<ExprId> &operands)
    {
        std::vector<ValueId> values;
        values.reserve(operands.size());
        for (const ExprId operand : operands)
            values.push_back(lower(operand));
        return values;
    }

    ValueId lowerColumn(const std::string &name)
    {
        const auto it = columnMemo_.find(name);
        if (it != columnMemo_.end())
            return it->second;
        MicroOp op;
        op.kind = MicroOpKind::Load;
        op.column = name;
        op.computeValue = newValue();
        program_.ops.push_back(op);
        columnMemo_.emplace(name, op.computeValue);
        return op.computeValue;
    }

    ValueId lowerNot(ValueId input)
    {
        const GateKey key{BoolOp::Not, {input}};
        const auto it = gateMemo_.find(key);
        if (it != gateMemo_.end())
            return program_.ops[it->second].computeValue;
        MicroOp op;
        op.kind = MicroOpKind::Not;
        op.family = BoolOp::Not;
        op.inputs = {input};
        op.computeValue = newValue();
        gateMemo_.emplace(key, program_.ops.size());
        program_.ops.push_back(op);
        return op.computeValue;
    }

    /**
     * One wide gate over <= maxGateInputs operands. @p invert selects
     * the free reference-side (NAND/NOR) result on the NandNor
     * backend; the SimraMaj backend has no free inverted twin and
     * pays an explicit NOT instead.
     */
    ValueId emitGate(BoolOp family, std::vector<ValueId> inputs,
                     bool invert)
    {
        assert(static_cast<int>(inputs.size()) >= 2);
        assert(static_cast<int>(inputs.size()) <=
               options_.maxGateInputs);
        std::sort(inputs.begin(), inputs.end());
        inputs.erase(std::unique(inputs.begin(), inputs.end()),
                     inputs.end());
        if (inputs.size() == 1)
            return invert ? lowerNot(inputs.front()) : inputs.front();
        if (options_.backend == ComputeBackend::SimraMaj) {
            const ValueId direct =
                emitMajGate(family, std::move(inputs));
            return invert ? lowerNot(direct) : direct;
        }
        const GateKey key{family, inputs};
        const auto it = gateMemo_.find(key);
        std::size_t opIndex;
        if (it != gateMemo_.end()) {
            opIndex = it->second;
        } else {
            MicroOp op;
            op.kind = MicroOpKind::Wide;
            op.family = family;
            op.inputs = std::move(inputs);
            opIndex = program_.ops.size();
            gateMemo_.emplace(key, opIndex);
            program_.ops.push_back(std::move(op));
        }
        MicroOp &op = program_.ops[opIndex];
        ValueId &side = invert ? op.referenceValue : op.computeValue;
        if (side == kNoValue)
            side = newValue();
        return side;
    }

    /**
     * One SiMRA MAJ gate (Buddy-RAM lowering): @p family picks the
     * constant bias — And: zeros outnumber ones by width-1 (output 1
     * only when every operand is 1), Or: the reverse, Maj3/Maj5:
     * balanced (pure majority; duplicates in @p inputs weight the
     * vote and are kept). The activation group pads to the next
     * power of two with one Frac tiebreaker plus balanced constant
     * pairs, which cancel in the majority.
     */
    ValueId emitMajGate(BoolOp family, std::vector<ValueId> inputs)
    {
        const GateKey key{family, inputs};
        const auto it = gateMemo_.find(key);
        std::size_t opIndex;
        if (it != gateMemo_.end()) {
            opIndex = it->second;
        } else {
            const int m = static_cast<int>(inputs.size());
            const bool pure =
                family == BoolOp::Maj3 || family == BoolOp::Maj5;
            const int bias = pure ? 0 : m - 1;
            const int cells = m + bias; // Odd: m odd (pure) or 2m-1.
            assert(cells % 2 == 1);
            int rows = 2;
            while (rows < cells + 1)
                rows *= 2;
            const int pad = (rows - cells - 1) / 2;
            MicroOp op;
            op.kind = MicroOpKind::Maj;
            op.family = family;
            op.inputs = std::move(inputs);
            op.constantOnes = (family == BoolOp::Or ? bias : 0) + pad;
            op.constantZeros = (family == BoolOp::And ? bias : 0) + pad;
            op.neutralRows = 1;
            op.activatedRows = rows;
            opIndex = program_.ops.size();
            gateMemo_.emplace(key, opIndex);
            program_.ops.push_back(std::move(op));
        }
        MicroOp &op = program_.ops[opIndex];
        if (op.computeValue == kNoValue)
            op.computeValue = newValue();
        return op.computeValue;
    }

    /**
     * Majority over an odd operand list. The SimraMaj backend hosts
     * it natively on one activation group; the NandNor basis expands
     * the sum-of-products form (every (m+1)/2-subset ANDed, ORed
     * together), the classical MAJ emulation cost that motivates the
     * SiMRA backend.
     */
    ValueId lowerMaj(std::vector<ValueId> values)
    {
        assert(values.size() % 2 == 1);
        std::sort(values.begin(), values.end());
        if (std::adjacent_find(values.begin(), values.end(),
                               std::not_equal_to<>()) == values.end())
            return values.front(); // All operands identical.
        if (options_.backend == ComputeBackend::SimraMaj) {
            const BoolOp family = values.size() <= 3 ? BoolOp::Maj3
                                                     : BoolOp::Maj5;
            return emitMajGate(family, std::move(values));
        }
        const std::size_t m = values.size();
        const std::size_t take = (m + 1) / 2;
        std::vector<ValueId> terms;
        std::vector<std::size_t> combo(take);
        for (std::size_t i = 0; i < take; ++i)
            combo[i] = i;
        while (true) {
            std::vector<ValueId> conj;
            conj.reserve(take);
            for (const std::size_t index : combo)
                conj.push_back(values[index]);
            terms.push_back(
                reduce(BoolOp::And, std::move(conj), false));
            // Next lexicographic combination of indices.
            std::size_t i = take;
            while (i > 0 && combo[i - 1] == m - take + (i - 1))
                --i;
            if (i == 0)
                break;
            ++combo[i - 1];
            for (std::size_t j = i; j < take; ++j)
                combo[j] = combo[j - 1] + 1;
        }
        return reduce(BoolOp::Or, std::move(terms), false);
    }

    static bool isPowerOfTwo(std::size_t v)
    {
        return v != 0 && (v & (v - 1)) == 0;
    }

    /** Largest power of two <= @p v (v >= 1). */
    static std::size_t floorPowerOfTwo(std::size_t v)
    {
        while (!isPowerOfTwo(v))
            v &= v - 1;
        return v;
    }

    /**
     * Tree-reduce an operand list through wide gates of up to
     * maxGateInputs inputs; the final gate yields the reference side
     * when @p invert is set (NAND/NOR of the whole list). The
     * NandNor substrate only activates N:N groups with N a power of
     * two, so its gate widths snap to powers of two; the MAJ basis
     * pads its activation group with balanced constants internally
     * and hosts any width.
     */
    ValueId reduce(BoolOp family, std::vector<ValueId> values,
                   bool invert)
    {
        assert(!values.empty());
        const bool pow2Only =
            options_.backend == ComputeBackend::NandNor;
        auto width = static_cast<std::size_t>(options_.maxGateInputs);
        if (pow2Only)
            width = floorPowerOfTwo(width);
        while (values.size() > 1) {
            if (values.size() <= width &&
                (!pow2Only || isPowerOfTwo(values.size())))
                return emitGate(family, std::move(values), invert);
            std::vector<ValueId> next;
            next.reserve(values.size() / width + 2);
            for (std::size_t i = 0; i < values.size();) {
                std::size_t n = std::min(width, values.size() - i);
                if (pow2Only)
                    n = floorPowerOfTwo(n);
                if (n <= 1) {
                    next.push_back(values[i]);
                    i += 1;
                    continue;
                }
                next.push_back(emitGate(
                    family,
                    {values.begin() + static_cast<std::ptrdiff_t>(i),
                     values.begin() +
                         static_cast<std::ptrdiff_t>(i + n)},
                    /*invert=*/false));
                i += n;
            }
            values = std::move(next);
        }
        return invert ? lowerNot(values.front()) : values.front();
    }

    /**
     * One XOR through the functionally-complete basis:
     * a ^ b = AND(OR(a, b), NAND(a, b)). On the NandNor backend the
     * NAND comes free from the reference rows of the AND(a, b) gate;
     * the SimraMaj backend pays a NOT for it.
     */
    ValueId xorPair(ValueId a, ValueId b)
    {
        const ValueId nand =
            emitGate(BoolOp::And, {a, b}, /*invert=*/true);
        const ValueId either =
            emitGate(BoolOp::Or, {a, b}, /*invert=*/false);
        return emitGate(BoolOp::And, {either, nand},
                        /*invert=*/false);
    }

    /**
     * Balanced-tree XOR reduction: pair adjacent operands level by
     * level, so an n-way XOR schedules in O(log n) waves. (A left
     * fold would chain n-1 dependent gates into an O(n)-deep — and
     * O(n)-wave — critical path.)
     */
    ValueId lowerXor(std::vector<ValueId> values)
    {
        assert(!values.empty());
        while (values.size() > 1) {
            std::vector<ValueId> next;
            next.reserve((values.size() + 1) / 2);
            for (std::size_t i = 0; i + 1 < values.size(); i += 2)
                next.push_back(xorPair(values[i], values[i + 1]));
            if (values.size() % 2 == 1)
                next.push_back(values.back());
            values = std::move(next);
        }
        return values.front();
    }

    void assignWaves()
    {
        std::map<ValueId, int> producerWave;
        int last = 0;
        for (MicroOp &op : program_.ops) {
            int wave = 0;
            for (const ValueId input : op.inputs)
                wave = std::max(wave, producerWave.at(input) + 1);
            op.wave = wave;
            last = std::max(last, wave);
            if (op.computeValue != kNoValue)
                producerWave[op.computeValue] = wave;
            if (op.referenceValue != kNoValue)
                producerWave[op.referenceValue] = wave;
        }
        program_.numWaves = program_.ops.empty() ? 0 : last + 1;
    }

    using GateKey = std::pair<BoolOp, std::vector<ValueId>>;

    const ExprPool &pool_;
    CompilerOptions options_;
    MicroProgram program_;
    ValueId nextValue_ = 0;
    std::map<ExprId, ValueId> exprMemo_;
    std::map<std::string, ValueId> columnMemo_;
    std::map<GateKey, std::size_t> gateMemo_;
};

} // namespace

Compiler::Compiler(CompilerOptions options) : options_(options)
{
}

MicroProgram
Compiler::compile(const ExprPool &pool, ExprId root) const
{
    Lowering lowering(pool, options_);
    return lowering.run(root);
}

std::vector<BitVector>
goldenValues(const MicroProgram &program,
             const std::map<std::string, BitVector> &columns)
{
    std::vector<BitVector> values(program.numValues);
    for (const MicroOp &op : program.ops) {
        BitVector direct;
        switch (op.kind) {
          case MicroOpKind::Load:
            direct = columns.at(op.column);
            break;
          case MicroOpKind::Not:
            direct = ~values[op.inputs.front()];
            break;
          case MicroOpKind::Wide: {
            direct = values[op.inputs.front()];
            for (std::size_t i = 1; i < op.inputs.size(); ++i) {
                direct = op.family == BoolOp::And
                             ? direct & values[op.inputs[i]]
                             : direct | values[op.inputs[i]];
            }
            break;
          }
          case MicroOpKind::Maj: {
            const std::size_t bits =
                values[op.inputs.front()].size();
            direct = BitVector(bits);
            for (std::size_t col = 0; col < bits; ++col) {
                int ones = op.constantOnes;
                for (const ValueId input : op.inputs)
                    ones += values[input].get(col) ? 1 : 0;
                // Neutral (VDD/2) cells contribute half a vote each.
                direct.set(col, 2 * ones + op.neutralRows >
                                    op.activatedRows);
            }
            break;
          }
        }
        if (op.referenceValue != kNoValue)
            values[op.referenceValue] = ~direct;
        if (op.computeValue != kNoValue)
            values[op.computeValue] = std::move(direct);
    }
    return values;
}

} // namespace fcdram::pud
