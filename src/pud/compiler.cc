#include "pud/compiler.hh"

#include <algorithm>
#include <cassert>
#include <map>

namespace fcdram::pud {

int
MicroProgram::loadOps() const
{
    return static_cast<int>(std::count_if(
        ops.begin(), ops.end(), [](const MicroOp &op) {
            return op.kind == MicroOpKind::Load;
        }));
}

int
MicroProgram::wideOps() const
{
    return static_cast<int>(std::count_if(
        ops.begin(), ops.end(), [](const MicroOp &op) {
            return op.kind == MicroOpKind::Wide;
        }));
}

int
MicroProgram::notOps() const
{
    return static_cast<int>(std::count_if(
        ops.begin(), ops.end(), [](const MicroOp &op) {
            return op.kind == MicroOpKind::Not;
        }));
}

int
MicroProgram::maxFanIn() const
{
    int widest = 0;
    for (const MicroOp &op : ops) {
        if (op.kind == MicroOpKind::Wide)
            widest = std::max(widest, op.width());
    }
    return widest;
}

namespace {

/**
 * Lowering state. Gates are memoized on (family, sorted operand
 * values), so a NAND over the same operands as an existing AND
 * attaches its value to that gate's reference side instead of
 * emitting a second execution, and identical gates reached through
 * different expression paths collapse to one μop.
 */
class Lowering
{
  public:
    Lowering(const ExprPool &pool, const CompilerOptions &options)
        : pool_(pool), options_(options)
    {
        assert(options_.maxGateInputs >= 2);
    }

    MicroProgram run(ExprId root)
    {
        program_.result = lower(root);
        assignWaves();
        program_.numValues = nextValue_;
        return std::move(program_);
    }

  private:
    ValueId newValue() { return nextValue_++; }

    ValueId lower(ExprId id)
    {
        const auto memo = exprMemo_.find(id);
        if (memo != exprMemo_.end())
            return memo->second;
        const ExprNode &node = pool_.node(id);
        ValueId value = kNoValue;
        switch (node.kind) {
          case ExprKind::Column:
            value = lowerColumn(node.column);
            break;
          case ExprKind::Not:
            value = lowerNot(lower(node.operands.front()));
            break;
          case ExprKind::And:
            value = reduce(BoolOp::And, lowerAll(node.operands),
                           /*invert=*/false);
            break;
          case ExprKind::Or:
            value = reduce(BoolOp::Or, lowerAll(node.operands),
                           /*invert=*/false);
            break;
          case ExprKind::Nand:
            value = reduce(BoolOp::And, lowerAll(node.operands),
                           /*invert=*/true);
            break;
          case ExprKind::Nor:
            value = reduce(BoolOp::Or, lowerAll(node.operands),
                           /*invert=*/true);
            break;
          case ExprKind::Xor:
            value = lowerXor(lowerAll(node.operands));
            break;
        }
        exprMemo_.emplace(id, value);
        return value;
    }

    std::vector<ValueId> lowerAll(const std::vector<ExprId> &operands)
    {
        std::vector<ValueId> values;
        values.reserve(operands.size());
        for (const ExprId operand : operands)
            values.push_back(lower(operand));
        return values;
    }

    ValueId lowerColumn(const std::string &name)
    {
        const auto it = columnMemo_.find(name);
        if (it != columnMemo_.end())
            return it->second;
        MicroOp op;
        op.kind = MicroOpKind::Load;
        op.column = name;
        op.computeValue = newValue();
        program_.ops.push_back(op);
        columnMemo_.emplace(name, op.computeValue);
        return op.computeValue;
    }

    ValueId lowerNot(ValueId input)
    {
        const GateKey key{BoolOp::Not, {input}};
        const auto it = gateMemo_.find(key);
        if (it != gateMemo_.end())
            return program_.ops[it->second].computeValue;
        MicroOp op;
        op.kind = MicroOpKind::Not;
        op.family = BoolOp::Not;
        op.inputs = {input};
        op.computeValue = newValue();
        gateMemo_.emplace(key, program_.ops.size());
        program_.ops.push_back(op);
        return op.computeValue;
    }

    /**
     * One wide gate over <= maxGateInputs operands. @p invert selects
     * the free reference-side (NAND/NOR) result.
     */
    ValueId emitGate(BoolOp family, std::vector<ValueId> inputs,
                     bool invert)
    {
        assert(static_cast<int>(inputs.size()) >= 2);
        assert(static_cast<int>(inputs.size()) <=
               options_.maxGateInputs);
        std::sort(inputs.begin(), inputs.end());
        inputs.erase(std::unique(inputs.begin(), inputs.end()),
                     inputs.end());
        if (inputs.size() == 1)
            return invert ? lowerNot(inputs.front()) : inputs.front();
        const GateKey key{family, inputs};
        const auto it = gateMemo_.find(key);
        std::size_t opIndex;
        if (it != gateMemo_.end()) {
            opIndex = it->second;
        } else {
            MicroOp op;
            op.kind = MicroOpKind::Wide;
            op.family = family;
            op.inputs = std::move(inputs);
            opIndex = program_.ops.size();
            gateMemo_.emplace(key, opIndex);
            program_.ops.push_back(std::move(op));
        }
        MicroOp &op = program_.ops[opIndex];
        ValueId &side = invert ? op.referenceValue : op.computeValue;
        if (side == kNoValue)
            side = newValue();
        return side;
    }

    /**
     * Tree-reduce an operand list through wide gates of up to
     * maxGateInputs inputs; the final gate yields the reference side
     * when @p invert is set (NAND/NOR of the whole list).
     */
    ValueId reduce(BoolOp family, std::vector<ValueId> values,
                   bool invert)
    {
        assert(!values.empty());
        const auto width =
            static_cast<std::size_t>(options_.maxGateInputs);
        while (values.size() > width) {
            std::vector<ValueId> next;
            next.reserve(values.size() / width + 1);
            for (std::size_t i = 0; i < values.size(); i += width) {
                const std::size_t n =
                    std::min(width, values.size() - i);
                if (n == 1) {
                    next.push_back(values[i]);
                    continue;
                }
                next.push_back(emitGate(
                    family,
                    {values.begin() + static_cast<std::ptrdiff_t>(i),
                     values.begin() +
                         static_cast<std::ptrdiff_t>(i + n)},
                    /*invert=*/false));
            }
            values = std::move(next);
        }
        if (values.size() == 1)
            return invert ? lowerNot(values.front()) : values.front();
        return emitGate(family, std::move(values), invert);
    }

    /**
     * Left-fold XOR through the functionally-complete basis:
     * a ^ b = AND(OR(a, b), NAND(a, b)), with the NAND taken for free
     * from the reference rows of the AND(a, b) gate.
     */
    ValueId lowerXor(const std::vector<ValueId> &values)
    {
        assert(!values.empty());
        ValueId acc = values.front();
        for (std::size_t i = 1; i < values.size(); ++i) {
            const ValueId nand =
                emitGate(BoolOp::And, {acc, values[i]},
                         /*invert=*/true);
            const ValueId either =
                emitGate(BoolOp::Or, {acc, values[i]},
                         /*invert=*/false);
            acc = emitGate(BoolOp::And, {either, nand},
                           /*invert=*/false);
        }
        return acc;
    }

    void assignWaves()
    {
        std::map<ValueId, int> producerWave;
        int last = 0;
        for (MicroOp &op : program_.ops) {
            int wave = 0;
            for (const ValueId input : op.inputs)
                wave = std::max(wave, producerWave.at(input) + 1);
            op.wave = wave;
            last = std::max(last, wave);
            if (op.computeValue != kNoValue)
                producerWave[op.computeValue] = wave;
            if (op.referenceValue != kNoValue)
                producerWave[op.referenceValue] = wave;
        }
        program_.numWaves = program_.ops.empty() ? 0 : last + 1;
    }

    using GateKey = std::pair<BoolOp, std::vector<ValueId>>;

    const ExprPool &pool_;
    CompilerOptions options_;
    MicroProgram program_;
    ValueId nextValue_ = 0;
    std::map<ExprId, ValueId> exprMemo_;
    std::map<std::string, ValueId> columnMemo_;
    std::map<GateKey, std::size_t> gateMemo_;
};

} // namespace

Compiler::Compiler(CompilerOptions options) : options_(options)
{
}

MicroProgram
Compiler::compile(const ExprPool &pool, ExprId root) const
{
    Lowering lowering(pool, options_);
    return lowering.run(root);
}

std::vector<BitVector>
goldenValues(const MicroProgram &program,
             const std::map<std::string, BitVector> &columns)
{
    std::vector<BitVector> values(program.numValues);
    for (const MicroOp &op : program.ops) {
        BitVector direct;
        switch (op.kind) {
          case MicroOpKind::Load:
            direct = columns.at(op.column);
            break;
          case MicroOpKind::Not:
            direct = ~values[op.inputs.front()];
            break;
          case MicroOpKind::Wide: {
            direct = values[op.inputs.front()];
            for (std::size_t i = 1; i < op.inputs.size(); ++i) {
                direct = op.family == BoolOp::And
                             ? direct & values[op.inputs[i]]
                             : direct | values[op.inputs[i]];
            }
            break;
          }
        }
        if (op.referenceValue != kNoValue)
            values[op.referenceValue] = ~direct;
        if (op.computeValue != kNoValue)
            values[op.computeValue] = std::move(direct);
    }
    return values;
}

} // namespace fcdram::pud
