/**
 * @file
 * QueryService: the prepared-query lifecycle API of the PuD engine.
 *
 *   prepare(pool, expr)  -> PreparedQuery   (self-contained handle)
 *   PreparedQuery::bind  -> BoundQuery      (data, separate from plan)
 *   submit(batch, fleet) -> QueryTicket     (one fleet pass)
 *   collect(ticket)      -> BatchQueryResult (results + cache counters)
 *
 * A one-shot run would re-pay compilation, slot ranking, and
 * reliability-mask derivation on every call; the service
 * amortizes them the way bulk-bitwise substrates assume queries are
 * issued repeatedly over resident data (Buddy-RAM): prepare caches
 * the compiled μprogram per backend shape, and a lazily built
 * per-module PlacementPlan (allocator slots + masks, pud/plan.hh)
 * keyed by (expression hash, resolved backend, chip profile,
 * temperature) serves every later submit. Plans go stale when the
 * submit temperature changes and are re-derived through the
 * stale-mask machinery rather than trusted.
 *
 * submit() batches any number of bound queries into ONE fleet pass
 * over FleetSession::runOverFleet: each module is visited once, all
 * queries of the batch execute against it there (copy-in staging is
 * shared — the batch ledger reports the deduplicated resident-column
 * load next to the naive per-query sum), and the analytic latency
 * model additionally interleaves the queries' waves across banks.
 * Ticket ids are the submit sequence, so they are deterministic and
 * independent of the worker count, as are all results
 * (module-ordered accumulator fold).
 */

#ifndef FCDRAM_PUD_SERVICE_HH
#define FCDRAM_PUD_SERVICE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pud/engine.hh"
#include "pud/plan.hh"

namespace fcdram::pud {

class BoundQuery;

/** Default data-seed salt of seeded bindings (fleet sweeps). */
inline constexpr std::uint64_t kDefaultDataSeedSalt = 0xDA7AULL;

/**
 * Value-semantic handle on a prepared query. Self-contained: the
 * expression is deep-copied into a private pool at prepare() time, so
 * the caller's ExprPool may go away. Cheap to copy (shared immutable
 * state) and usable with any QueryService — plan caches key on the
 * expression content hash, not on the handle.
 */
class PreparedQuery
{
  public:
    PreparedQuery() = default;

    bool valid() const { return state_ != nullptr; }

    /** Canonical content hash (ExprPool::hashOf) — the plan key. */
    std::uint64_t exprHash() const;

    /** Sorted unique names of the columns the query reads. */
    const std::vector<std::string> &columns() const;

    /** Prefix-notation rendering (tests and logs). */
    std::string toString() const;

    /**
     * Attach explicit column data. Every referenced column must be
     * present; submit() validates names and sizes against the
     * session geometry (std::invalid_argument otherwise). On a fleet
     * submit the same data runs on every module.
     */
    BoundQuery bind(std::map<std::string, BitVector> columns) const;

    /**
     * Same, sharing an existing immutable dataset: binding N queries
     * of one batch to one shared_ptr keeps a single copy of the
     * bitmaps instead of N.
     */
    BoundQuery
    bind(std::shared_ptr<const std::map<std::string, BitVector>>
             columns) const;

    /**
     * Attach per-module deterministic random data derived from
     * hashCombine(module seed, @p dataSeedSalt) — the fleet-sweep
     * binding used by fleet benchmarks and campaign sweeps.
     */
    BoundQuery
    bindSeeded(std::uint64_t dataSeedSalt = kDefaultDataSeedSalt)
        const;

  private:
    friend class QueryService;
    friend class BoundQuery;

    struct State
    {
        ExprPool pool;
        ExprId root = kNoExpr;
        std::uint64_t hash = 0;
        std::vector<std::string> columnNames;
    };

    std::shared_ptr<const State> state_;
};

/**
 * A prepared query with its input data: the submit unit. Plans stay
 * on the service; binding only carries columns (or the seed recipe
 * for per-module data), so one PreparedQuery serves any number of
 * concurrent bindings.
 */
class BoundQuery
{
  public:
    BoundQuery() = default;

    bool valid() const { return query_.valid(); }
    const PreparedQuery &query() const { return query_; }

    /** True for bindSeeded (per-module data from the module seed). */
    bool seeded() const { return seeded_; }

    /**
     * Identity key of the bound dataset, for request coalescing in
     * the serving tier: two bindings with equal keys are guaranteed
     * to feed identical column data to any given module. Seeded
     * bindings compare by data-seed salt (their data is a pure
     * function of module seed and salt); explicit bindings compare by
     * the identity of the shared immutable dataset (the pointer), so
     * equal keys mean the same object, never a deep comparison.
     */
    std::pair<bool, std::uint64_t> dataKey() const;

  private:
    friend class PreparedQuery;
    friend class QueryService;

    PreparedQuery query_;
    std::shared_ptr<const std::map<std::string, BitVector>> columns_;
    bool seeded_ = false;
    std::uint64_t dataSeedSalt_ = kDefaultDataSeedSalt;
};

/**
 * Handle on a submitted batch. Ids are the service's submit
 * sequence: deterministic in the submit call order (never in the
 * worker count), and never 0.
 */
struct QueryTicket
{
    std::uint64_t id = 0;

    bool valid() const { return id != 0; }
};

/** What collect() returns: per-query fleet stats plus the ledgers. */
struct BatchQueryResult
{
    /** One entry per bound query, in submit order. */
    std::vector<FleetQueryStats> queries;

    /**
     * Plan-cache counter delta attributable to this submit,
     * computed as a snapshot difference over the shared cache.
     * Exact when submits are serialized (the usual pattern, and what
     * the benches assert on); submits racing on one service fold
     * each other's activity into overlapping deltas — cumulative
     * totals (QueryService::planCacheStats) stay exact either way.
     */
    PlanCacheStats cache;

    /**
     * Analytic batch timing, summed over modules: serial is the sum
     * of the queries' individual DRAM latencies; interleaved overlaps
     * the queries' per-bank busy time across banks (lower-bounded by
     * the slowest single query — its waves still serialize).
     */
    double serialLatencyNs = 0.0;
    double interleavedLatencyNs = 0.0;

    /**
     * Copy-in staging ledger, summed over modules: naive charges
     * every query its own column loads; resident dedupes columns
     * shared between the batch's queries (they are staged once).
     */
    QueryCost naiveLoad;
    QueryCost residentLoad;
};

/**
 * The prepared-query service over one fleet session. Thread safe;
 * ticket ids follow the submit call order. The concurrent serving
 * tier (serve/server.hh) layers batching windows, admission control,
 * and tenant fairness on top of this class.
 */
class QueryService
{
  public:
    explicit QueryService(std::shared_ptr<FleetSession> session,
                          EngineOptions options = EngineOptions());

    const EngineOptions &options() const { return engine_.options(); }
    const std::shared_ptr<FleetSession> &session() const
    {
        return session_;
    }

    /** The compile/execute core the service schedules over. */
    const PudEngine &engine() const { return engine_; }

    /** Compile-and-cache a query; see PreparedQuery. */
    PreparedQuery prepare(const ExprPool &pool, ExprId root);

    /**
     * Execute @p batch in one pass over every module of @p fleet.
     * Blocking (results are ready when the call returns); collect()
     * hands them out exactly once. @throws std::invalid_argument on
     * an empty batch, an invalid binding, or explicit columns that
     * do not cover the query at the session geometry. @throws
     * verify::VerifyError when a derived plan carries Error
     * diagnostics and EngineOptions::verify is VerifyPolicy::Enforce
     * (the default); Report/Off opt out of rejection.
     */
    QueryTicket submit(std::vector<BoundQuery> batch,
                       FleetSession::Fleet fleet);

    /** Same, on a single module (explicit or seeded bindings). */
    QueryTicket submit(std::vector<BoundQuery> batch,
                       const FleetSession::Module &module);

    /**
     * Hand out a submitted batch's results. Each ticket collects
     * exactly once. @throws std::invalid_argument for an unknown or
     * already collected ticket.
     */
    BatchQueryResult collect(const QueryTicket &ticket);

    /**
     * Temperature subsequent submits execute at (and derive masks
     * for). Plans prepared at another temperature are invalidated
     * lazily on their next lookup. Default: the session chips'
     * temperature.
     */
    void setTemperature(Celsius temperature);
    void clearTemperature();

    /**
     * Monotone counter bumped by every setTemperature /
     * clearTemperature call. The serving tier stamps queries with the
     * epoch at enqueue time so one batching window never coalesces
     * bindings from both sides of a temperature change.
     */
    std::uint64_t temperatureEpoch() const;

    /**
     * Validate one binding exactly as submit() would: a bound query
     * whose explicit columns cover the expression at the session
     * geometry. @throws std::invalid_argument otherwise. The serving
     * tier fails invalid queries synchronously at enqueue instead of
     * poisoning a whole batch at flush time.
     */
    void validateBound(const BoundQuery &bound) const;

    /** Cumulative plan-cache counters (per-submit deltas ride the
     * BatchQueryResult). */
    PlanCacheStats planCacheStats() const { return cache_.stats(); }

  private:
    struct BatchAccum;

    void runBatchOnModule(const FleetSession::Module &module,
                          const std::vector<BoundQuery> &batch,
                          BatchAccum &accum);

    BatchQueryResult packageResult(BatchAccum &&accum,
                                   const PlanCacheStats &before);

    void validate(const std::vector<BoundQuery> &batch) const;

    QueryTicket store(BatchQueryResult result);

    std::shared_ptr<FleetSession> session_;
    PudEngine engine_;
    PlanCache cache_;

    mutable std::mutex mutex_;
    std::optional<Celsius> temperatureOverride_;
    std::uint64_t temperatureEpoch_ = 0;
    std::uint64_t nextSequence_ = 1;
    std::map<std::uint64_t, BatchQueryResult> pending_;
};

} // namespace fcdram::pud

#endif // FCDRAM_PUD_SERVICE_HH
