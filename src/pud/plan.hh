/**
 * @file
 * Placement plans and the plan cache behind the prepared-query
 * lifecycle (pud/service.hh).
 *
 * A PlacementPlan is everything expensive about running one query on
 * one module: the compiled μprogram and its placement onto allocator
 * slots with reliability masks. The PlanCache memoizes three layers:
 *
 *  - compiled μprograms, keyed by (expression content hash, resolved
 *    backend, gate fan-in capability) — a program is chip-profile
 *    dependent only through that pair, so one compile serves every
 *    module resolving to the same shape;
 *  - row allocators, keyed by (module, mask temperature) — slot
 *    discovery rides the session's memoized qualifying-pair cache and
 *    is shared by every query against the module;
 *  - plans, keyed by (expression content hash, module) — the entry
 *    records the temperature its masks were derived at and is
 *    invalidated and re-derived when a submit executes at a different
 *    temperature (the stale-mask contract: PudEngine::execute rejects
 *    a temperature mismatch as a hard error, so the cache re-plans
 *    instead of ever trusting stale masks).
 *
 * Under EngineOptions::verify != Off, every derived plan is also
 * statically verified (verify::verifyPlan) at derivation time; the
 * verdict is cached in the PlacementPlan (warm submits re-check
 * nothing) and mirrored into the verify.* telemetry counters.
 *
 * Keys use ExprPool::hashOf, a canonical 64-bit structural hash; two
 * prepared queries with the same content share plans (hash collisions
 * are treated as identity, which at 64 bits is vanishingly unlikely
 * for in-memory cache lifetimes).
 */

#ifndef FCDRAM_PUD_PLAN_HH
#define FCDRAM_PUD_PLAN_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <tuple>
#include <utility>

#include "pud/allocator.hh"
#include "pud/engine.hh"
#include "verify/diagnostics.hh"

namespace fcdram::pud {

/**
 * Cache effectiveness counters. Cumulative over a PlanCache's
 * lifetime; QueryService reports the per-submit delta with every
 * collected batch, and bench_pud_query asserts that a warm submit of
 * a prepared batch performs zero compiles and zero placements.
 */
struct PlanCacheStats
{
    std::uint64_t lookups = 0; ///< plan() calls.
    std::uint64_t hits = 0;    ///< ... served entirely from cache.
    std::uint64_t misses = 0;  ///< ... that derived a new plan.

    /** Plans dropped because the submit temperature changed. */
    std::uint64_t invalidations = 0;

    std::uint64_t compiles = 0;        ///< Compiler invocations.
    std::uint64_t placements = 0;      ///< RowAllocator::place calls.
    std::uint64_t allocatorBuilds = 0; ///< RowAllocator constructions.

    /** Fieldwise difference (per-submit deltas from snapshots). */
    PlanCacheStats operator-(const PlanCacheStats &other) const;
};

/**
 * One query's cached execution recipe on one module: the compiled
 * μprogram (shared with every module of the same backend shape) and
 * its placement onto reliability-masked slots, stamped with the
 * temperature the masks were derived at.
 */
struct PlacementPlan
{
    std::shared_ptr<const MicroProgram> program;
    Placement placement;

    ComputeBackend backend = ComputeBackend::NandNor;
    int capability = 0;

    /** Mask-derivation temperature (must match execution). */
    Celsius temperature = kDefaultTemperature;

    std::uint64_t exprHash = 0;
    std::size_t moduleIndex = 0;

    /**
     * Cached static-verification verdict (src/verify/), derived once
     * with the plan under EngineOptions::verify != Off; empty when
     * verification is off. QueryService::submit rejects plans whose
     * verdict carries Errors under VerifyPolicy::Enforce. An
     * SLO-violating certificate (UPL202) and over-budget rows
     * (UPL201) land in the same sink.
     */
    verify::DiagnosticSink verification;

    /**
     * Certified per-column error bounds of the plan's result value
     * (verify/certify.hh), derived with the verdict under
     * EngineOptions::verify != Off at the engine's redundancy;
     * default (all-zero bounds, accuracy 1) when verification is off.
     */
    verify::PlanCertificate certificate;

    /** Static activation census of one execution of this plan. */
    verify::ActivationPressureProfile pressure;
};

/**
 * Thread-safe memoization of programs, allocators, and plans for one
 * QueryService. Entries are immutable once published and derivation
 * runs outside every cache lock.
 *
 * Built for the concurrent serving tier: the plan map is split into
 * fixed shards, each guarded by a reader-writer lock, and the program
 * map is reader-writer locked too, so warm concurrent submits (all
 * hits) take only shared locks on the memoization structures and
 * never serialize against each other. Two racing derivations of the
 * same key both compute the identical immutable plan (derivation is
 * pure) and the second publish overwrites the first harmlessly.
 *
 * The effectiveness ledger stays a single small mutex: its critical
 * sections are a couple of integer increments, and keeping every
 * counter behind one lock preserves the collect()-asserted invariant
 * hits + misses == lookups at every instant (per-counter atomics
 * could be snapshotted between the pairwise increments).
 */
class PlanCache
{
  public:
    /** @p engine must outlive the cache (QueryService owns both). */
    explicit PlanCache(const PudEngine &engine);

    /**
     * The plan for (@p exprHash, @p module) at @p temperature,
     * deriving (and caching) the program, allocator, and placement on
     * a miss. @p pool / @p root are only read on a compile miss.
     */
    std::shared_ptr<const PlacementPlan>
    plan(std::uint64_t exprHash, const ExprPool &pool, ExprId root,
         const FleetSession::Module &module, Celsius temperature);

    /** Snapshot of the cumulative counters. */
    PlanCacheStats stats() const;

  private:
    /**
     * Plan-map shard count. A small power of two: shards only need to
     * spread (expression, module) keys across locks well enough that
     * warm submits from a handful of serving workers rarely meet on
     * one shared_mutex.
     */
    static constexpr std::size_t kPlanShards = 16;

    struct PlanShard
    {
        mutable std::shared_mutex mutex;
        std::map<std::pair<std::uint64_t, std::size_t>,
                 std::shared_ptr<const PlacementPlan>>
            plans;
    };

    PlanShard &shardOf(std::uint64_t exprHash, std::size_t module);

    std::shared_ptr<const MicroProgram>
    programFor(std::uint64_t exprHash, const ExprPool &pool,
               ExprId root, const Chip &chip, ComputeBackend backend,
               int capability);

    /**
     * Shared so an in-flight placement keeps its allocator alive:
     * creating a module's allocator at a NEW temperature evicts the
     * module's other-temperature entries (bounding the cache at one
     * allocator per module under drifting setTemperature), and the
     * evicted allocator must outlive any concurrent place() call.
     */
    std::shared_ptr<const RowAllocator>
    allocatorFor(const FleetSession::Module &module,
                 Celsius temperature);

    const PudEngine *engine_;

    mutable std::shared_mutex programMutex_;
    std::map<std::tuple<std::uint64_t, std::uint8_t, int>,
             std::shared_ptr<const MicroProgram>>
        programs_;

    /** Allocator builds are rare (one per module and temperature). */
    std::mutex allocatorMutex_;
    std::map<std::pair<std::size_t, Celsius>,
             std::shared_ptr<const RowAllocator>>
        allocators_;

    std::array<PlanShard, kPlanShards> planShards_;

    mutable std::mutex statsMutex_;
    PlanCacheStats stats_;
};

} // namespace fcdram::pud

#endif // FCDRAM_PUD_PLAN_HH
