#include "pud/service.hh"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/rng.hh"
#include "obs/telemetry.hh"
#include "verify/verifier.hh"

namespace fcdram::pud {

namespace {

/** Componentwise scaling (all column loads cost the same write). */
QueryCost
scaleCost(const QueryCost &cost, double fraction)
{
    QueryCost scaled;
    scaled.commands = static_cast<std::uint64_t>(
        static_cast<double>(cost.commands) * fraction + 0.5);
    scaled.latencyNs = cost.latencyNs * fraction;
    scaled.energyNj = cost.energyNj * fraction;
    return scaled;
}

} // namespace

std::uint64_t
PreparedQuery::exprHash() const
{
    assert(state_ != nullptr);
    return state_->hash;
}

const std::vector<std::string> &
PreparedQuery::columns() const
{
    assert(state_ != nullptr);
    return state_->columnNames;
}

std::string
PreparedQuery::toString() const
{
    assert(state_ != nullptr);
    return state_->pool.toString(state_->root);
}

BoundQuery
PreparedQuery::bind(std::map<std::string, BitVector> columns) const
{
    return bind(
        std::make_shared<const std::map<std::string, BitVector>>(
            std::move(columns)));
}

BoundQuery
PreparedQuery::bind(
    std::shared_ptr<const std::map<std::string, BitVector>> columns)
    const
{
    assert(state_ != nullptr);
    if (columns == nullptr) {
        throw std::invalid_argument(
            "PreparedQuery::bind: null column data");
    }
    obs::Span span(obs::global(), "service.bind");
    span.arg("expr", state_->hash);
    BoundQuery bound;
    bound.query_ = *this;
    bound.columns_ = std::move(columns);
    return bound;
}

BoundQuery
PreparedQuery::bindSeeded(std::uint64_t dataSeedSalt) const
{
    assert(state_ != nullptr);
    BoundQuery bound;
    bound.query_ = *this;
    bound.seeded_ = true;
    bound.dataSeedSalt_ = dataSeedSalt;
    return bound;
}

std::pair<bool, std::uint64_t>
BoundQuery::dataKey() const
{
    if (seeded_)
        return {true, dataSeedSalt_};
    return {false,
            static_cast<std::uint64_t>(
                reinterpret_cast<std::uintptr_t>(columns_.get()))};
}

/**
 * Per-module fold of one submit: per-query rows plus the batch
 * ledgers. Folded in module order by runOverFleet (mergeFrom), so
 * every field is independent of the worker count.
 */
struct QueryService::BatchAccum
{
    std::vector<FleetQueryStats> queries;
    double serialLatencyNs = 0.0;
    double interleavedLatencyNs = 0.0;
    QueryCost naiveLoad;
    QueryCost residentLoad;

    void mergeFrom(BatchAccum &&other)
    {
        if (queries.size() < other.queries.size())
            queries.resize(other.queries.size());
        for (std::size_t i = 0; i < other.queries.size(); ++i)
            queries[i].mergeFrom(std::move(other.queries[i]));
        serialLatencyNs += other.serialLatencyNs;
        interleavedLatencyNs += other.interleavedLatencyNs;
        naiveLoad.add(other.naiveLoad);
        residentLoad.add(other.residentLoad);
    }
};

QueryService::QueryService(std::shared_ptr<FleetSession> session,
                           EngineOptions options)
    : session_(std::move(session)), engine_(session_, options),
      cache_(engine_)
{
}

PreparedQuery
QueryService::prepare(const ExprPool &pool, ExprId root)
{
    obs::Telemetry &tel = obs::global();
    obs::Span span(tel, "service.prepare");
    if (tel.metricsOn())
        tel.add(tel.counter("service.prepares"));
    auto state = std::make_shared<PreparedQuery::State>();
    // Deep-copy the expression so the handle outlives the caller's
    // pool; the canonical content hash keys every cache below.
    state->root = state->pool.import(pool, root);
    state->hash = state->pool.hashOf(state->root);
    state->columnNames = state->pool.columnsOf(state->root);
    span.arg("expr", state->hash);
    PreparedQuery prepared;
    prepared.state_ = std::move(state);
    return prepared;
}

void
QueryService::validateBound(const BoundQuery &bound) const
{
    if (!bound.valid()) {
        throw std::invalid_argument(
            "QueryService::submit: unbound query in batch");
    }
    if (bound.seeded_)
        return;
    if (bound.columns_ == nullptr) {
        // Defense in depth for release builds: the contract is
        // std::invalid_argument, never a null dereference.
        throw std::invalid_argument(
            "QueryService::submit: binding carries no data");
    }
    const auto bits = static_cast<std::size_t>(
        session_->config().geometry.columns);
    for (const std::string &name : bound.query_.state_->columnNames) {
        const auto it = bound.columns_->find(name);
        if (it == bound.columns_->end()) {
            throw std::invalid_argument(
                "QueryService::submit: bound data misses "
                "column '" +
                name + "'");
        }
        if (it->second.size() != bits) {
            std::ostringstream message;
            message << "QueryService::submit: column '" << name
                    << "' has " << it->second.size()
                    << " bits, session geometry needs " << bits;
            throw std::invalid_argument(message.str());
        }
    }
}

void
QueryService::validate(const std::vector<BoundQuery> &batch) const
{
    if (batch.empty()) {
        throw std::invalid_argument(
            "QueryService::submit: empty batch");
    }
    for (const BoundQuery &bound : batch)
        validateBound(bound);
}

void
QueryService::runBatchOnModule(const FleetSession::Module &module,
                               const std::vector<BoundQuery> &batch,
                               BatchAccum &accum)
{
    obs::Telemetry &tel = obs::global();
    // Direct single-module submits bypass runOverFleet, so (re)apply
    // the module scope here; under a fleet run this is idempotent.
    const obs::MetricScope scope(module.index, 0);
    obs::Span batchSpan(tel, "module_batch");
    batchSpan.arg("module",
                  static_cast<std::uint64_t>(module.index));
    batchSpan.arg("queries",
                  static_cast<std::uint64_t>(batch.size()));

    const auto bits = static_cast<std::size_t>(
        session_->config().geometry.columns);
    const Celsius temperature = [&] {
        const std::lock_guard<std::mutex> lock(mutex_);
        return temperatureOverride_.value_or(
            session_->chip(module).temperature());
    }();

    accum.queries.resize(batch.size());
    std::map<int, double> bankBusyNs;
    double serialNs = 0.0;
    double slowestNs = 0.0;
    QueryCost naive;
    double totalLoads = 0.0;
    std::set<std::string> residentColumns;

    for (std::size_t q = 0; q < batch.size(); ++q) {
        const BoundQuery &bound = batch[q];
        const PreparedQuery::State &state = *bound.query_.state_;
        obs::Span querySpan(tel, "query");
        querySpan.arg("expr", state.hash);
        querySpan.arg("index", static_cast<std::uint64_t>(q));
        const std::shared_ptr<const PlacementPlan> plan =
            cache_.plan(state.hash, state.pool, state.root, module,
                        temperature);
        // Error-bearing plans must not touch the chip under Enforce.
        // Throwing here propagates through the scheduler (run()
        // rethrows the first task exception) out of submit().
        if (engine_.options().verify == VerifyPolicy::Enforce &&
            plan->verification.hasErrors()) {
            const bool sloViolation = std::any_of(
                plan->verification.diagnostics().begin(),
                plan->verification.diagnostics().end(),
                [](const verify::Diagnostic &diagnostic) {
                    return diagnostic.rule == "UPL202";
                });
            if (tel.metricsOn()) {
                tel.add(tel.counter("verify.rejected_plans"));
                if (sloViolation)
                    tel.add(tel.counter("verify.slo_rejections"));
            }
            std::ostringstream message;
            message << "QueryService::submit: plan for query '"
                    << bound.query_.toString() << "' on module "
                    << module.index << " fails static verification ("
                    << verify::summarizeVerdict(plan->verification)
                    << ")";
            throw verify::VerifyError(message.str(),
                                      plan->verification);
        }
        // Explicit bindings are shared immutable data: point at
        // them instead of deep-copying the bitmaps per module and
        // submit (the warm path must not re-pay data movement).
        std::map<std::string, BitVector> seededData;
        if (bound.seeded_) {
            seededData = PudEngine::randomColumns(
                state.columnNames, bits,
                hashCombine(module.seed, bound.dataSeedSalt_));
        }
        const std::map<std::string, BitVector> &data =
            bound.seeded_ ? seededData : *bound.columns_;

        // Fresh chip per query: command-level execution mutates rows,
        // and the contract is bit-identity with a cold one-shot run.
        Chip chip = session_->checkoutChip(module);
        chip.setTemperature(temperature);

        ModuleQueryStats stats;
        stats.moduleIndex = module.index;
        std::ostringstream label;
        label << module.spec->profile().label() << " #"
              << module.index;
        stats.label = label.str();
        stats.certificate = plan->certificate;
        stats.result = engine_.execute(
            *plan->program, plan->placement, plan->temperature, chip,
            hashCombine(module.seed,
                        engine_.options().benderSeedSalt),
            data);

        serialNs += stats.result.dram.latencyNs;
        slowestNs = std::max(slowestNs, stats.result.dram.latencyNs);
        for (const auto &[bank, ns] : stats.result.bankBusyNs)
            bankBusyNs[bank] += ns;
        naive.add(stats.result.load);
        totalLoads += plan->program->loadOps();
        residentColumns.insert(state.columnNames.begin(),
                               state.columnNames.end());

        accum.queries[q].modules.push_back(std::move(stats));
    }

    // Interleaving model: across the queries of one batch, wave
    // execution overlaps across banks. The batch can finish no
    // earlier than its slowest single query (waves serialize within
    // a query) and no earlier than the busiest bank's total command
    // time (the bank bus serializes).
    double busiestBankNs = 0.0;
    for (const auto &[bank, ns] : bankBusyNs)
        busiestBankNs = std::max(busiestBankNs, ns);
    accum.serialLatencyNs += serialNs;
    accum.interleavedLatencyNs += std::max(slowestNs, busiestBankNs);

    // Copy-in staging: columns shared between the batch's queries are
    // resident once; the naive ledger charges every query its own
    // loads, the resident ledger dedupes them.
    accum.naiveLoad.add(naive);
    const double fraction =
        totalLoads == 0.0
            ? 1.0
            : static_cast<double>(residentColumns.size()) /
                  totalLoads;
    accum.residentLoad.add(scaleCost(naive, fraction));
}

QueryTicket
QueryService::store(BatchQueryResult result)
{
    // Ticket ids are the submit sequence: unique, never 0, and
    // deterministic in the submit call order (never in the worker
    // count).
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = nextSequence_++;
    pending_.emplace(id, std::move(result));
    return QueryTicket{id};
}

BatchQueryResult
QueryService::packageResult(BatchAccum &&accum,
                            const PlanCacheStats &before)
{
    BatchQueryResult result;
    result.queries = std::move(accum.queries);
    result.serialLatencyNs = accum.serialLatencyNs;
    result.interleavedLatencyNs = accum.interleavedLatencyNs;
    result.naiveLoad = accum.naiveLoad;
    result.residentLoad = accum.residentLoad;
    result.cache = cache_.stats() - before;
    return result;
}

QueryTicket
QueryService::submit(std::vector<BoundQuery> batch,
                     FleetSession::Fleet fleet)
{
    obs::Telemetry &tel = obs::global();
    obs::Span span(tel, "service.submit");
    span.arg("queries", static_cast<std::uint64_t>(batch.size()));
    if (tel.metricsOn()) {
        tel.add(tel.counter("service.submits"));
        tel.add(tel.counter("service.queries"), batch.size());
    }
    validate(batch);
    const PlanCacheStats before = cache_.stats();
    BatchAccum accum = session_->runOverFleet<BatchAccum>(
        fleet, [&](const FleetSession::ModuleView &view,
                   BatchAccum &partial) {
            runBatchOnModule(view.module, batch, partial);
        });
    const QueryTicket ticket =
        store(packageResult(std::move(accum), before));
    span.arg("ticket", ticket.id);
    return ticket;
}

QueryTicket
QueryService::submit(std::vector<BoundQuery> batch,
                     const FleetSession::Module &module)
{
    obs::Telemetry &tel = obs::global();
    obs::Span span(tel, "service.submit");
    span.arg("queries", static_cast<std::uint64_t>(batch.size()));
    span.arg("module", static_cast<std::uint64_t>(module.index));
    if (tel.metricsOn()) {
        tel.add(tel.counter("service.submits"));
        tel.add(tel.counter("service.queries"), batch.size());
    }
    validate(batch);
    const PlanCacheStats before = cache_.stats();
    BatchAccum accum;
    runBatchOnModule(module, batch, accum);
    const QueryTicket ticket =
        store(packageResult(std::move(accum), before));
    span.arg("ticket", ticket.id);
    return ticket;
}

BatchQueryResult
QueryService::collect(const QueryTicket &ticket)
{
    obs::Telemetry &tel = obs::global();
    obs::Span span(tel, "service.collect");
    span.arg("ticket", ticket.id);
    if (tel.metricsOn())
        tel.add(tel.counter("service.collects"));

    // The cache ledger must classify every lookup as exactly one of
    // hit or miss; a drift here means a counting bug upstream, so
    // fail loudly at the API boundary instead of shipping skewed
    // cache deltas in results.
    const PlanCacheStats cacheNow = cache_.stats();
    if (cacheNow.hits + cacheNow.misses != cacheNow.lookups) {
        std::ostringstream message;
        message << "QueryService::collect: plan cache ledger "
                   "inconsistent (hits "
                << cacheNow.hits << " + misses " << cacheNow.misses
                << " != lookups " << cacheNow.lookups << ")";
        throw std::logic_error(message.str());
    }

    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = pending_.find(ticket.id);
    if (it == pending_.end()) {
        std::ostringstream message;
        message << "QueryService::collect: unknown or already "
                   "collected ticket "
                << ticket.id;
        throw std::invalid_argument(message.str());
    }
    BatchQueryResult result = std::move(it->second);
    pending_.erase(it);
    return result;
}

void
QueryService::setTemperature(Celsius temperature)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    temperatureOverride_ = temperature;
    ++temperatureEpoch_;
}

void
QueryService::clearTemperature()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    temperatureOverride_.reset();
    ++temperatureEpoch_;
}

std::uint64_t
QueryService::temperatureEpoch() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return temperatureEpoch_;
}

} // namespace fcdram::pud
