#include "pud/allocator.hh"

#include <algorithm>
#include <cassert>

#include "analog/successmodel.hh"
#include "dram/address.hh"
#include "dram/bank.hh"
#include "dram/openbitline.hh"
#include "dram/subarray.hh"
#include "fcdram/analytic.hh"
#include "fcdram/ops.hh"
#include "fcdram/reliablemask.hh"

namespace fcdram::pud {

const BitVector &
GateSlot::mask(BoolOp op) const
{
    switch (op) {
      case BoolOp::And:
        return andMask;
      case BoolOp::Or:
        return orMask;
      case BoolOp::Nand:
        return nandMask;
      case BoolOp::Nor:
        return norMask;
      case BoolOp::Not:
      case BoolOp::Maj3:
      case BoolOp::Maj5:
        break;
    }
    assert(false && "no mask for this op");
    return andMask;
}

double
GateSlot::score() const
{
    return ReliableMask::maskDensity(andMask) + ReliableMask::maskDensity(orMask) +
           ReliableMask::maskDensity(nandMask) + ReliableMask::maskDensity(norMask);
}

namespace {

/**
 * Threshold cut of a per-column success-probability vector. Columns
 * the mechanism does not reach (probability sentinel -1.0) never pass
 * any threshold, including 0.
 */
BitVector
thresholdMask(const std::vector<double> &probabilities,
              double thresholdPercent)
{
    if (probabilities.empty())
        return BitVector();
    BitVector mask(probabilities.size(), false);
    for (std::size_t col = 0; col < probabilities.size(); ++col) {
        mask.set(col, probabilities[col] >= 0.0 &&
                          100.0 * probabilities[col] >=
                              thresholdPercent);
    }
    return mask;
}

} // namespace

std::vector<double>
logicSuccessProbabilities(const Chip &chip, BankId bank, BoolOp op,
                          RowId refGlobal, RowId comGlobal,
                          Celsius temperature, MarginCase marginCase)
{
    const GeometryConfig &geometry = chip.geometry();
    const RowAddress ref = decomposeRow(geometry, refGlobal);
    const RowAddress com = decomposeRow(geometry, comGlobal);
    const ActivationSets sets =
        chip.decoder().neighborActivation(ref.localRow, com.localRow);
    if (!sets.simultaneous || sets.nrf() != sets.nrl())
        return {};
    const int n = sets.nrl();

    const SuccessModel &model = chip.model();
    const Bank &bankRef = chip.bank(bank);
    const StripeId stripe = sharedStripe(ref.subarray, com.subarray);
    const auto columns =
        sharedColumns(geometry, ref.subarray, com.subarray);

    // The executor reads the first row of the measured side, so the
    // probabilities cover exactly that row's cells.
    const bool measureRef = isInvertedOp(op);
    const auto &rows = measureRef ? sets.firstRows : sets.secondRows;
    const SubarrayId rowSa = measureRef ? ref.subarray : com.subarray;
    const Subarray &rowSub = bankRef.subarray(rowSa);
    const RowId measured = rows.front();

    LogicContext ctx;
    ctx.op = op;
    ctx.numInputs = n;
    // Worst: full neighbor-bitline disagreement; Best: none.
    ctx.cond.couplingFraction =
        marginCase == MarginCase::Worst ? 1.0 : 0.0;
    // Trust columns at the temperature the run will execute at.
    ctx.cond.temperature = temperature;
    const Region own = rowSub.regionFor(measured, stripe);
    const Region refRep = bankRef.subarray(ref.subarray)
                              .regionFor(ref.localRow, stripe);
    const Region comRep = bankRef.subarray(com.subarray)
                              .regionFor(com.localRow, stripe);
    if (measureRef) {
        ctx.refRegion = own;
        ctx.comRegion = comRep;
    } else {
        ctx.comRegion = own;
        ctx.refRegion = refRep;
    }

    // The sensing margin depends on how many operand rows carry
    // logic-1 at a column; a deployment mask must hold for every
    // count (take the minimum), while the optimistic interval side
    // may assume the easiest count (take the maximum).
    Volt extremeMargin = 0.0;
    for (int k = 0; k <= n; ++k) {
        ctx.numOnes = k;
        const Volt margin = model.logicMargin(ctx);
        if (k == 0)
            extremeMargin = margin;
        else if (marginCase == MarginCase::Worst)
            extremeMargin = std::min(extremeMargin, margin);
        else
            extremeMargin = std::max(extremeMargin, margin);
    }

    std::vector<double> probabilities(
        static_cast<std::size_t>(geometry.columns), -1.0);
    const RowId global = composeRow(geometry, rowSa, measured);
    for (const ColId col : columns) {
        const Volt offset = model.staticOffset(bank, global, col, stripe);
        const bool failStruct = model.structuralFail(bank, stripe, col, n);
        probabilities[col] = model.cellSuccessProbability(
            extremeMargin, offset, failStruct);
    }
    return probabilities;
}

std::vector<double>
notSuccessProbabilities(const Chip &chip, BankId bank, RowId srcGlobal,
                        RowId dstGlobal, Celsius temperature,
                        MarginCase marginCase)
{
    AnalyticConfig config;
    config.sampleBinomial = false;
    AnalyticAnalyzer analyzer(chip, config, 0);
    OpConditions cond;
    cond.couplingFraction =
        marginCase == MarginCase::Worst ? 1.0 : 0.0;
    cond.temperature = temperature;
    const auto samples =
        analyzer.notSamples(bank, srcGlobal, dstGlobal, cond);
    if (samples.empty())
        return {};
    const GeometryConfig &geometry = chip.geometry();
    // The executor reads the first destination row of the activation.
    const RowId measured = samples.front().rowLocal;
    std::vector<double> probabilities(
        static_cast<std::size_t>(geometry.columns), -1.0);
    for (const CellSample &sample : samples) {
        if (sample.rowLocal != measured)
            continue;
        probabilities[sample.col] = sample.probability;
    }
    return probabilities;
}

std::vector<double>
rowCloneSuccessProbabilities(const Chip &chip, BankId bank,
                             RowId srcGlobal, RowId dstGlobal,
                             Celsius temperature, MarginCase marginCase)
{
    const GeometryConfig &geometry = chip.geometry();
    const RowAddress src = decomposeRow(geometry, srcGlobal);
    const RowAddress dst = decomposeRow(geometry, dstGlobal);
    assert(src.subarray == dst.subarray);
    const auto set = chip.decoder().sameSubarrayActivation(
        src.localRow, dst.localRow);
    if (set.size() != 2)
        return {};

    // Mirror the executor's RowClone drive model (applyRowClone):
    // the restored source overdrives the activated set.
    const SuccessModel &model = chip.model();
    const int total = static_cast<int>(set.size()) + 1;
    ComparisonContext ctx;
    ctx.cellsPerSide = total;
    ctx.couplingFraction =
        marginCase == MarginCase::Worst ? 1.0 : 0.0;
    ctx.temperature = temperature;
    const Volt margin = model.driveMarginMech(total + 1, ctx);

    std::vector<double> probabilities(
        static_cast<std::size_t>(geometry.columns), -1.0);
    for (ColId col = 0; col < static_cast<ColId>(geometry.columns);
         ++col) {
        const StripeId stripe = stripeFor(dst.subarray, col);
        const Volt offset =
            model.staticOffset(bank, dstGlobal, col, stripe);
        const bool failStruct =
            model.structuralFail(bank, stripe, col, (total + 1) / 2);
        probabilities[col] = model.cellSuccessProbability(
            margin, offset, failStruct);
    }
    return probabilities;
}

std::vector<double>
majSuccessProbabilities(const Chip &chip, BankId bank, RowId rfGlobal,
                        RowId rlGlobal, int activatedRows,
                        Celsius temperature, MarginCase marginCase)
{
    const GeometryConfig &geometry = chip.geometry();
    const RowAddress rf = decomposeRow(geometry, rfGlobal);
    const RowAddress rl = decomposeRow(geometry, rlGlobal);
    assert(rf.subarray == rl.subarray);
    const auto set = chip.decoder().sameSubarrayActivation(
        rf.localRow, rl.localRow);
    if (static_cast<int>(set.size()) != activatedRows ||
        activatedRows < 2)
        return {};

    const SuccessModel &model = chip.model();
    MajContext ctx;
    ctx.activatedRows = activatedRows;
    ctx.neutralCells = 1;
    ctx.cond.couplingFraction =
        marginCase == MarginCase::Worst ? 1.0 : 0.0;
    ctx.cond.temperature = temperature;
    Volt margin = 0.0;
    if (marginCase == MarginCase::Worst) {
        // The deciding vote of any hosted gate is one cell; the
        // just-above-half count sits on the penalized high-common-mode
        // side, so it lower-bounds both output polarities.
        ctx.numOnes = activatedRows / 2;
        margin = model.majMargin(ctx);
    } else {
        // Optimistic side: the easiest ones-count any hosted gate can
        // present (maximum margin over the non-neutral cells).
        for (int k = 0; k < activatedRows; ++k) {
            ctx.numOnes = k;
            const Volt candidate = model.majMargin(ctx);
            margin = k == 0 ? candidate : std::max(margin, candidate);
        }
    }

    const RowId measured = set.front();
    const RowId global = composeRow(geometry, rf.subarray, measured);
    const int pair_load = (activatedRows + 1) / 2;
    std::vector<double> probabilities(
        static_cast<std::size_t>(geometry.columns), -1.0);
    for (ColId col = 0; col < static_cast<ColId>(geometry.columns);
         ++col) {
        const StripeId stripe = stripeFor(rf.subarray, col);
        const Volt offset =
            model.staticOffset(bank, global, col, stripe);
        const bool failStruct =
            model.structuralFail(bank, stripe, col, pair_load);
        probabilities[col] = model.cellSuccessProbability(
            margin, offset, failStruct);
    }
    return probabilities;
}

BitVector
worstCaseLogicMask(const Chip &chip, BankId bank, BoolOp op,
                   RowId refGlobal, RowId comGlobal,
                   double thresholdPercent, Celsius temperature)
{
    return thresholdMask(
        logicSuccessProbabilities(chip, bank, op, refGlobal, comGlobal,
                                  temperature, MarginCase::Worst),
        thresholdPercent);
}

BitVector
worstCaseNotMask(const Chip &chip, BankId bank, RowId srcGlobal,
                 RowId dstGlobal, double thresholdPercent,
                 Celsius temperature)
{
    return thresholdMask(
        notSuccessProbabilities(chip, bank, srcGlobal, dstGlobal,
                                temperature, MarginCase::Worst),
        thresholdPercent);
}

BitVector
worstCaseRowCloneMask(const Chip &chip, BankId bank, RowId srcGlobal,
                      RowId dstGlobal, double thresholdPercent,
                      Celsius temperature)
{
    return thresholdMask(
        rowCloneSuccessProbabilities(chip, bank, srcGlobal, dstGlobal,
                                     temperature, MarginCase::Worst),
        thresholdPercent);
}

BitVector
worstCaseMajMask(const Chip &chip, BankId bank, RowId rfGlobal,
                 RowId rlGlobal, int activatedRows,
                 double thresholdPercent, Celsius temperature)
{
    return thresholdMask(
        majSuccessProbabilities(chip, bank, rfGlobal, rlGlobal,
                                activatedRows, temperature,
                                MarginCase::Worst),
        thresholdPercent);
}

RowAllocator::RowAllocator(const FleetSession &session,
                           const FleetSession::Module &module,
                           AllocatorOptions options,
                           std::optional<Celsius> maskTemperature)
    : session_(&session), module_(module),
      chip_(&session.chip(module)), seed_(module.seed),
      options_(options),
      temperature_(maskTemperature.value_or(chip_->temperature()))
{
}

RowAllocator::RowAllocator(const Chip &chip, std::uint64_t seed,
                           AllocatorOptions options)
    : chip_(&chip), seed_(seed), options_(options),
      temperature_(chip.temperature())
{
}

std::vector<PairContext>
RowAllocator::directContexts() const
{
    // Private chips get the exhaustive deterministic enumeration of
    // neighboring subarray pairs in bank 0.
    std::vector<PairContext> contexts;
    const int pairs = chip_->geometry().subarraysPerBank - 1;
    contexts.reserve(static_cast<std::size_t>(pairs));
    for (int low = 0; low < pairs; ++low) {
        PairContext context;
        context.bank = 0;
        context.lowSubarray = static_cast<SubarrayId>(low);
        contexts.push_back(context);
    }
    return contexts;
}

std::vector<std::pair<RowId, RowId>>
RowAllocator::discover(const PairContext &context,
                       const PairQuery &query) const
{
    if (session_ != nullptr)
        return session_->qualifyingPairs(module_, context, query);
    // Mirror the session's canonical discovery seed so direct and
    // session-backed allocation agree for the same chip seed.
    const std::uint64_t seed = hashCombine(
        seed_, hashCombine(query.key(),
                           0xD15CULL + context.bank * 977 +
                               context.lowSubarray * 131));
    return findQualifyingPairs(*chip_, context, query,
                               options_.probesPerPair,
                               options_.candidatePairsPerWidth, seed);
}

const std::vector<GateSlot> &
RowAllocator::gateSlots(int width) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto cached = slotsByWidth_.find(width);
    if (cached != slotsByWidth_.end())
        return cached->second;

    if (contexts_.empty()) {
        contexts_ = session_ != nullptr
                        ? session_->pairContexts(module_)
                        : directContexts();
    }

    const GeometryConfig &geometry = chip_->geometry();
    const PairQuery query = PairQuery::square(width);
    std::vector<GateSlot> slots;
    for (const PairContext &context : contexts_) {
        if (static_cast<int>(slots.size()) >=
            options_.candidatePairsPerWidth)
            break;
        for (const auto &[refAnchor, comAnchor] :
             discover(context, query)) {
            if (static_cast<int>(slots.size()) >=
                options_.candidatePairsPerWidth)
                break;
            const RowAddress ref = decomposeRow(geometry, refAnchor);
            const RowAddress com = decomposeRow(geometry, comAnchor);
            const ActivationSets sets =
                chip_->decoder().neighborActivation(ref.localRow,
                                                    com.localRow);
            GateSlot slot;
            slot.context = context;
            slot.refAnchor = refAnchor;
            slot.comAnchor = comAnchor;
            slot.width = width;
            for (const RowId local : sets.firstRows) {
                slot.refRows.push_back(
                    composeRow(geometry, ref.subarray, local));
            }
            for (const RowId local : sets.secondRows) {
                slot.computeRows.push_back(
                    composeRow(geometry, com.subarray, local));
            }
            // Staging rows for RowClone copy-in, pairwise disjoint
            // and clear of the activation set.
            std::vector<RowId> avoid;
            for (const RowId local : sets.secondRows)
                avoid.push_back(local);
            const double threshold = options_.maskThresholdPercent;
            // Staging donors share the fracInit XOR-flip search.
            for (const RowId local : sets.secondRows) {
                const RowId donor =
                    findPairActivatingDonor(*chip_, local, avoid);
                if (donor == kInvalidRow) {
                    slot.stagingRows.push_back(kInvalidRow);
                    slot.stagingMasks.emplace_back();
                    continue;
                }
                avoid.push_back(donor);
                const RowId donorGlobal =
                    composeRow(geometry, com.subarray, donor);
                const RowId targetGlobal =
                    composeRow(geometry, com.subarray, local);
                slot.stagingRows.push_back(donorGlobal);
                slot.stagingMasks.push_back(worstCaseRowCloneMask(
                    *chip_, context.bank, donorGlobal, targetGlobal,
                    threshold, temperature_));
            }
            slot.andMask = worstCaseLogicMask(
                *chip_, context.bank, BoolOp::And, refAnchor,
                comAnchor, threshold, temperature_);
            slot.orMask = worstCaseLogicMask(
                *chip_, context.bank, BoolOp::Or, refAnchor,
                comAnchor, threshold, temperature_);
            slot.nandMask = worstCaseLogicMask(
                *chip_, context.bank, BoolOp::Nand, refAnchor,
                comAnchor, threshold, temperature_);
            slot.norMask = worstCaseLogicMask(
                *chip_, context.bank, BoolOp::Nor, refAnchor,
                comAnchor, threshold, temperature_);
            slots.push_back(std::move(slot));
        }
    }

    // Reliability-aware placement: densest masks first. Stable sort
    // plus the deterministic candidate order keeps placement
    // reproducible across runs and worker counts.
    std::stable_sort(slots.begin(), slots.end(),
                     [](const GateSlot &a, const GateSlot &b) {
                         return a.score() > b.score();
                     });
    if (static_cast<int>(slots.size()) > options_.slotsPerWidth)
        slots.resize(static_cast<std::size_t>(options_.slotsPerWidth));
    return slotsByWidth_.emplace(width, std::move(slots))
        .first->second;
}

const std::vector<NotSlot> &
RowAllocator::notSlots() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (notSlots_.has_value())
        return *notSlots_;

    if (contexts_.empty()) {
        contexts_ = session_ != nullptr
                        ? session_->pairContexts(module_)
                        : directContexts();
    }

    // Any activation reaching exactly one destination row performs
    // NOT (simultaneous or sequential, so Samsung designs place too).
    const PairQuery query = PairQuery::anyWithDest(1);
    std::vector<NotSlot> slots;
    for (const PairContext &context : contexts_) {
        if (static_cast<int>(slots.size()) >=
            options_.candidatePairsPerWidth)
            break;
        for (const auto &[src, dst] : discover(context, query)) {
            if (static_cast<int>(slots.size()) >=
                options_.candidatePairsPerWidth)
                break;
            NotSlot slot;
            slot.context = context;
            slot.srcRow = src;
            slot.dstRow = dst;
            slot.mask = worstCaseNotMask(*chip_, context.bank, src,
                                         dst,
                                         options_.maskThresholdPercent,
                                         temperature_);
            slots.push_back(std::move(slot));
        }
    }
    std::stable_sort(slots.begin(), slots.end(),
                     [](const NotSlot &a, const NotSlot &b) {
                         return ReliableMask::maskDensity(a.mask) >
                                ReliableMask::maskDensity(b.mask);
                     });
    if (static_cast<int>(slots.size()) > options_.slotsPerWidth)
        slots.resize(static_cast<std::size_t>(options_.slotsPerWidth));
    notSlots_ = std::move(slots);
    return *notSlots_;
}

const std::vector<MajSlot> &
RowAllocator::majSlots(int activatedRows) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto cached = majSlotsByRows_.find(activatedRows);
    if (cached != majSlotsByRows_.end())
        return cached->second;

    if (contexts_.empty()) {
        contexts_ = session_ != nullptr
                        ? session_->pairContexts(module_)
                        : directContexts();
    }

    const GeometryConfig &geometry = chip_->geometry();
    const PairQuery query = PairQuery::sameSubarray(activatedRows);
    std::vector<MajSlot> slots;
    for (const PairContext &context : contexts_) {
        if (static_cast<int>(slots.size()) >=
            options_.candidatePairsPerWidth)
            break;
        for (const auto &[rfAnchor, rlAnchor] :
             discover(context, query)) {
            if (static_cast<int>(slots.size()) >=
                options_.candidatePairsPerWidth)
                break;
            const RowAddress rf = decomposeRow(geometry, rfAnchor);
            const auto set = chip_->decoder().sameSubarrayActivation(
                rf.localRow,
                decomposeRow(geometry, rlAnchor).localRow);
            if (static_cast<int>(set.size()) != activatedRows)
                continue;
            MajSlot slot;
            slot.context = context;
            slot.rfAnchor = rfAnchor;
            slot.rlAnchor = rlAnchor;
            slot.activatedRows = activatedRows;
            for (const RowId local : set) {
                slot.rows.push_back(
                    composeRow(geometry, rf.subarray, local));
            }
            slot.mask = worstCaseMajMask(
                *chip_, context.bank, rfAnchor, rlAnchor,
                activatedRows, options_.maskThresholdPercent,
                temperature_);
            slots.push_back(std::move(slot));
        }
    }
    std::stable_sort(slots.begin(), slots.end(),
                     [](const MajSlot &a, const MajSlot &b) {
                         return ReliableMask::maskDensity(a.mask) >
                                ReliableMask::maskDensity(b.mask);
                     });
    if (static_cast<int>(slots.size()) > options_.slotsPerWidth)
        slots.resize(static_cast<std::size_t>(options_.slotsPerWidth));
    return majSlotsByRows_.emplace(activatedRows, std::move(slots))
        .first->second;
}

Placement
RowAllocator::place(const MicroProgram &program) const
{
    Placement placement;
    placement.gateSlotOf.assign(program.ops.size(), -1);
    placement.notSlotOf.assign(program.ops.size(), -1);
    placement.majSlotOf.assign(program.ops.size(), -1);

    // (wave, width) round-robin: independent gates of one wave spread
    // over the ranked slots (distinct subarray pairs when available).
    std::map<std::pair<int, int>, std::size_t> rotation;
    std::map<std::pair<int, std::size_t>, int> used; // (width, rank)

    for (std::size_t i = 0; i < program.ops.size(); ++i) {
        const MicroOp &op = program.ops[i];
        if (op.kind == MicroOpKind::Maj) {
            const std::vector<MajSlot> &slots =
                majSlots(op.activatedRows);
            if (slots.empty()) {
                placement.complete = false;
                continue;
            }
            const std::size_t rank =
                rotation[{op.wave, -op.activatedRows}]++ %
                slots.size();
            const auto key =
                std::make_pair(-op.activatedRows - 1, rank);
            auto it = used.find(key);
            if (it == used.end()) {
                placement.majSlots.push_back(slots[rank]);
                it = used.emplace(key,
                                  static_cast<int>(
                                      placement.majSlots.size() - 1))
                         .first;
            }
            placement.majSlotOf[i] = it->second;
        } else if (op.kind == MicroOpKind::Wide) {
            const std::vector<GateSlot> &slots = gateSlots(op.width());
            if (slots.empty()) {
                placement.complete = false;
                continue;
            }
            const std::size_t rank =
                rotation[{op.wave, op.width()}]++ % slots.size();
            const auto key = std::make_pair(op.width(), rank);
            auto it = used.find(key);
            if (it == used.end()) {
                placement.gateSlots.push_back(slots[rank]);
                it = used.emplace(key,
                                  static_cast<int>(
                                      placement.gateSlots.size() - 1))
                         .first;
            }
            placement.gateSlotOf[i] = it->second;
        } else if (op.kind == MicroOpKind::Not) {
            const std::vector<NotSlot> &slots = notSlots();
            if (slots.empty()) {
                placement.complete = false;
                continue;
            }
            const std::size_t rank =
                rotation[{op.wave, 1}]++ % slots.size();
            const auto key = std::make_pair(-1, rank);
            auto it = used.find(key);
            if (it == used.end()) {
                placement.notSlots.push_back(slots[rank]);
                it = used.emplace(key,
                                  static_cast<int>(
                                      placement.notSlots.size() - 1))
                         .first;
            }
            placement.notSlotOf[i] = it->second;
        }
    }
    return placement;
}

} // namespace fcdram::pud
