#include "pud/engine.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/rng.hh"
#include "fcdram/ops.hh"

namespace fcdram::pud {

const char *
toString(BackendChoice choice)
{
    switch (choice) {
      case BackendChoice::NandNor: return "nand-nor";
      case BackendChoice::SimraMaj: return "simra-maj";
      case BackendChoice::Auto: return "auto";
    }
    return "?";
}

const char *
toString(VerifyPolicy policy)
{
    switch (policy) {
      case VerifyPolicy::Off: return "off";
      case VerifyPolicy::Report: return "report";
      case VerifyPolicy::Enforce: return "enforce";
    }
    return "?";
}

void
VoteSet::add(const BitVector &bits)
{
    if (bits.size() != columns_) {
        // A short readback would count the missing columns as
        // 0-votes and silently bias the majority; reject it.
        std::ostringstream message;
        message << "VoteSet::add: readback covers " << bits.size()
                << " columns, expected " << columns_;
        throw std::invalid_argument(message.str());
    }
    // Ripple-carry add of one bit per column into the counter planes.
    BitVector carry = bits;
    for (BitVector &plane : planes_) {
        if (carry.popcount() == 0)
            return;
        BitVector overflow = plane;
        overflow &= carry;
        plane ^= carry;
        carry = std::move(overflow);
    }
    if (carry.popcount() != 0)
        planes_.push_back(std::move(carry));
}

bool
VoteSet::majority(std::size_t col, int trials) const
{
    int count = 0;
    for (std::size_t p = 0; p < planes_.size(); ++p)
        count += planes_[p].get(col) ? 1 << p : 0;
    return 2 * count > trials;
}

BitVector
VoteSet::majorityBits(int trials) const
{
    // count >= threshold, MSB-first bit-serial compare per word.
    const auto threshold =
        static_cast<std::uint64_t>(trials / 2 + 1);
    const int plane_count = std::max(
        static_cast<int>(planes_.size()),
        static_cast<int>(std::bit_width(threshold)));
    BitVector result(columns_);
    const auto out = result.words();
    for (std::size_t w = 0; w < out.size(); ++w) {
        std::uint64_t greater = 0;
        std::uint64_t equal = ~std::uint64_t{0};
        for (int p = plane_count - 1; p >= 0; --p) {
            const std::uint64_t plane =
                static_cast<std::size_t>(p) < planes_.size()
                    ? planes_[static_cast<std::size_t>(p)].words()[w]
                    : 0;
            const std::uint64_t tb =
                ((threshold >> p) & 1) ? ~std::uint64_t{0} : 0;
            greater |= equal & plane & ~tb;
            equal &= ~(plane ^ tb);
        }
        out[w] = greater | equal;
    }
    result.maskTail();
    return result;
}

namespace {

/**
 * Analytic cost model of the command primitives the executor issues.
 * Latencies derive from the nominal DDR4 timing parameters plus the
 * executor's restore window; energies are rough whole-row DDR4
 * numbers (order-of-magnitude, for comparing schedules — not a power
 * model): ACT 0.9 nJ, PRE 0.45 nJ, WR 1.3 nJ, RD 1.1 nJ.
 */
class CostModel
{
  public:
    explicit CostModel(const Chip &chip)
        : timing_(TimingParams::nominal()),
          gapNs_(chip.profile().speed.quantizedGapNs(
              kViolatedGapTargetNs))
    {
    }

    /** Direct row write: ACT + WR + PRE. */
    QueryCost hostWrite() const
    {
        return {3, timing_.tRcd + timing_.tWr + timing_.tRp,
                kActNj + kWrNj + kPreNj};
    }

    /** Nominal row read: ACT + RD + PRE. */
    QueryCost hostRead() const
    {
        return {3, timing_.tRcd + kBurstNs + timing_.tRp,
                kActNj + kRdNj + kPreNj};
    }

    /** Violated ACT-PRE-ACT-PRE logic sequence (incl. restore). */
    QueryCost logicProgram() const
    {
        return {4, 2.0 * gapNs_ + kRestoreNs + timing_.tRp,
                2.0 * (kActNj + kPreNj)};
    }

    /** NOT / RowClone sequence: full-tRAS first ACT, violated second. */
    QueryCost copyProgram() const
    {
        return {4, timing_.tRas + gapNs_ + kRestoreNs + timing_.tRp,
                2.0 * (kActNj + kPreNj)};
    }

    /** Interrupted Frac charge-sharing sequence. */
    QueryCost fracProgram() const
    {
        return {4, 3.0 * gapNs_ + timing_.tRp,
                2.0 * (kActNj + kPreNj)};
    }

    /**
     * SiMRA in-subarray MAJ activation: the same violated
     * ACT-PRE-ACT restore-PRE shape as the cross-subarray logic
     * sequence.
     */
    QueryCost majProgram() const { return logicProgram(); }

    const TimingParams &timing() const { return timing_; }

  private:
    static constexpr double kActNj = 0.9;
    static constexpr double kPreNj = 0.45;
    static constexpr double kWrNj = 1.3;
    static constexpr double kRdNj = 1.1;
    static constexpr Ns kBurstNs = 5.0;

    /** Restore wait before the final PRE (executor's restore-done). */
    static constexpr Ns kRestoreNs = 20.0;

    TimingParams timing_;
    Ns gapNs_;
};

/**
 * CPU bulk-bitwise baseline: the scan streams every referenced
 * bitmap over the memory bus (peak x64-DIMM bandwidth of the
 * module's speed grade, validated positive at config load) and
 * writes the result back; ALU work is bandwidth-dominated. The
 * fixed per-transfer overhead comes from the timing config. Energy
 * at a rough 20 pJ/byte of DRAM traffic.
 */
QueryCost
cpuBaselineCost(const Chip &chip, const TimingParams &timing,
                int loads, std::size_t bits)
{
    const double bytes =
        (static_cast<double>(loads) + 1.0) *
        static_cast<double>(bits) / 8.0;
    QueryCost cost;
    cost.commands = 0;
    cost.latencyNs = bytes / chip.profile().speed.bytesPerNs() +
                     timing.hostCopyOverheadNs;
    cost.energyNj = bytes * 0.02;
    return cost;
}

} // namespace

void
FleetQueryStats::mergeFrom(FleetQueryStats &&other)
{
    modules.insert(modules.end(),
                   std::make_move_iterator(other.modules.begin()),
                   std::make_move_iterator(other.modules.end()));
}

std::size_t
FleetQueryStats::placedModules() const
{
    return static_cast<std::size_t>(std::count_if(
        modules.begin(), modules.end(),
        [](const ModuleQueryStats &m) { return m.result.placed; }));
}

std::size_t
FleetQueryStats::checkedBits() const
{
    std::size_t total = 0;
    for (const ModuleQueryStats &m : modules)
        total += m.result.checkedBits;
    return total;
}

std::size_t
FleetQueryStats::matchingBits() const
{
    std::size_t total = 0;
    for (const ModuleQueryStats &m : modules)
        total += m.result.matchingBits;
    return total;
}

double
FleetQueryStats::accuracyPercent() const
{
    const std::size_t checked = checkedBits();
    return checked == 0 ? 100.0
                        : 100.0 *
                              static_cast<double>(matchingBits()) /
                              static_cast<double>(checked);
}

namespace {

template <class Fn>
double
placedMean(const std::vector<ModuleQueryStats> &modules, Fn &&metric)
{
    double total = 0.0;
    std::size_t placed = 0;
    for (const ModuleQueryStats &m : modules) {
        if (!m.result.placed)
            continue;
        total += metric(m.result);
        ++placed;
    }
    return placed == 0 ? 0.0 : total / static_cast<double>(placed);
}

} // namespace

double
FleetQueryStats::meanCommands() const
{
    return placedMean(modules, [](const QueryResult &r) {
        return static_cast<double>(r.dram.commands);
    });
}

double
FleetQueryStats::meanLatencyNs() const
{
    return placedMean(modules, [](const QueryResult &r) {
        return r.dram.latencyNs;
    });
}

double
FleetQueryStats::meanEnergyNj() const
{
    return placedMean(modules, [](const QueryResult &r) {
        return r.dram.energyNj;
    });
}

double
FleetQueryStats::meanCoverage() const
{
    return placedMean(modules, [](const QueryResult &r) {
        return r.dramCoverage;
    });
}

double
FleetQueryStats::meanCpuLatencyNs() const
{
    return placedMean(modules, [](const QueryResult &r) {
        return r.cpuBaseline.latencyNs;
    });
}

PudEngine::PudEngine(std::shared_ptr<FleetSession> session,
                     EngineOptions options)
    : session_(std::move(session)), options_(options)
{
    assert(session_ != nullptr);
    // Majority voting needs an odd trial count: with an even count a
    // tie resolves to 0, making e.g. redundancy=2 strictly worse
    // than a single trial. Enforced here, at the API boundary, so
    // release builds reject it too.
    if (options_.redundancy < 1 || options_.redundancy % 2 == 0) {
        std::ostringstream message;
        message << "EngineOptions::redundancy must be a positive odd "
                   "trial count, got "
                << options_.redundancy;
        throw std::invalid_argument(message.str());
    }
    if (options_.telemetry.any())
        obs::global().enable(options_.telemetry);
}


MicroProgram
PudEngine::compile(const ExprPool &pool, ExprId root) const
{
    return Compiler(options_.compiler).compile(pool, root);
}

ComputeBackend
PudEngine::resolveBackend(const ChipProfile &profile) const
{
    switch (options_.backend) {
      case BackendChoice::NandNor:
        return ComputeBackend::NandNor;
      case BackendChoice::SimraMaj:
        return ComputeBackend::SimraMaj;
      case BackendChoice::Auto:
        break;
    }
    return profile.supportsSimra() ? ComputeBackend::SimraMaj
                                   : ComputeBackend::NandNor;
}

std::pair<ComputeBackend, int>
PudEngine::backendCapability(const Chip &chip) const
{
    const RowDecoder &decoder = chip.decoder();
    ComputeBackend backend;
    if (options_.backend == BackendChoice::Auto) {
        // Decoder-level check: the profile may promise more rows
        // than this chip's geometry can expand to.
        backend = decoder.maxSameSubarrayRows() >= 4
                      ? ComputeBackend::SimraMaj
                      : ComputeBackend::NandNor;
    } else {
        backend = resolveBackend(chip.profile());
    }
    int capability = 0;
    if (backend == ComputeBackend::SimraMaj) {
        // A k-input gate occupies a 2k-row group.
        capability = decoder.maxSameSubarrayRows() / 2;
    } else if (chip.profile().supportsLogicOps()) {
        // The largest N:N neighbor activation is 2^stages.
        capability = 1 << decoder.numStages();
    }
    return {backend, capability};
}

MicroProgram
PudEngine::compileFor(const ExprPool &pool, ExprId root,
                      const Chip &chip) const
{
    const auto [backend, capability] = backendCapability(chip);
    CompilerOptions compilerOptions = options_.compiler;
    compilerOptions.backend = backend;
    // Clamp the gate fan-in to what the chip can activate, so wide
    // gates become trees instead of unplaceable ops on smaller
    // decoders. Chips with no capability at all keep the requested
    // width and fall back per gate at placement.
    if (capability >= 2) {
        compilerOptions.maxGateInputs =
            std::min(compilerOptions.maxGateInputs, capability);
    }
    return Compiler(compilerOptions).compile(pool, root);
}

std::map<std::string, BitVector>
PudEngine::randomColumns(const std::vector<std::string> &names,
                         std::size_t bits, std::uint64_t seed)
{
    std::map<std::string, BitVector> columns;
    std::uint64_t salt = 0;
    for (const std::string &name : names) {
        Rng rng(hashCombine(seed, ++salt));
        BitVector bitsVec(bits);
        bitsVec.randomize(rng);
        columns.emplace(name, std::move(bitsVec));
    }
    return columns;
}

QueryResult
PudEngine::execute(const MicroProgram &program,
                   const RowAllocator &allocator, Chip &chip,
                   std::uint64_t benderSeed,
                   const std::map<std::string, BitVector> &columns)
    const
{
    // Fail the stale-temperature contract before paying for slot
    // ranking and placement (the inner overload re-checks).
    if (allocator.maskTemperature() != chip.temperature()) {
        std::ostringstream message;
        message << "PudEngine::execute: allocator masks derived at "
                << allocator.maskTemperature()
                << " C but the chip executes at "
                << chip.temperature()
                << " C; re-derive the allocator";
        throw std::invalid_argument(message.str());
    }
    return execute(program, allocator.place(program),
                   allocator.maskTemperature(), chip, benderSeed,
                   columns);
}

QueryResult
PudEngine::execute(const MicroProgram &program,
                   const Placement &placement,
                   Celsius maskTemperature, Chip &chip,
                   std::uint64_t benderSeed,
                   const std::map<std::string, BitVector> &columns)
    const
{
    // Reliability masks are temperature-specific: trusting masks
    // derived at another temperature would silently mis-trust
    // columns, so a mismatch is a hard error (the plan cache
    // re-derives instead of hitting this).
    if (maskTemperature != chip.temperature()) {
        std::ostringstream message;
        message << "PudEngine::execute: placement masks derived at "
                << maskTemperature
                << " C but the chip executes at "
                << chip.temperature()
                << " C; re-derive the placement";
        throw std::invalid_argument(message.str());
    }

    const GeometryConfig &geometry = chip.geometry();
    const auto numColumns =
        static_cast<std::size_t>(geometry.columns);
    obs::Telemetry &tel = obs::global();
    obs::Span execSpan(tel, "engine.execute");
    execSpan.arg("waves",
                 static_cast<std::uint64_t>(program.numWaves));
    execSpan.arg("ops",
                 static_cast<std::uint64_t>(program.ops.size()));
    DramBender bender(chip, benderSeed, options_.execMode);
    Ops ops(bender);
    const CostModel cost(chip);
    const int trials = options_.redundancy;

    const std::vector<BitVector> golden =
        goldenValues(program, columns);

    QueryResult result;
    result.placed = placement.complete;
    result.backend = program.backend;
    result.wideOps = program.wideOps();
    result.notOps = program.notOps();
    result.majOps = program.majOps();
    result.waves = program.numWaves;

    std::vector<BitVector> values(program.numValues);
    std::vector<BitVector> masks(program.numValues,
                                 BitVector(numColumns, false));
    std::vector<bool> isColumn(program.numValues, false);

    // Latency bookkeeping: commands serialize within a bank, waves of
    // independent gates overlap across banks.
    std::map<std::pair<int, int>, double> waveBankNs;
    // Per-op costs accumulate locally and commit only when the op's
    // DRAM result is actually used; an op that aborts to the CPU
    // fallback charges nothing.
    const auto commitCost = [&](const MicroOp &op, BankId bank,
                                const QueryCost &c) {
        result.dram.commands += c.commands;
        result.dram.energyNj += c.energyNj;
        waveBankNs[{op.wave, static_cast<int>(bank)}] += c.latencyNs;
    };

    // Trusted DRAM bits overwrite the golden fallback; every trusted
    // bit is also checked against the golden model for the accuracy
    // report. Word-parallel throughout: majority planes, blend, and
    // popcount-based accounting.
    const auto assemble = [&](ValueId value, const BitVector &mask,
                              const VoteSet &votes) {
        const BitVector bits = votes.majorityBits(trials);
        BitVector &out = values[value];
        out = golden[value];
        out.andNot(mask);
        BitVector dram = bits;
        dram &= mask;
        out |= dram;
        masks[value] = mask;
        const std::size_t checked = mask.popcount();
        BitVector mismatch = bits;
        mismatch ^= golden[value];
        mismatch &= mask;
        result.checkedBits += checked;
        result.matchingBits += checked - mismatch.popcount();
    };

    std::uint64_t cpuFallbacks = 0;
    const auto cpuFallback = [&](const MicroOp &op) {
        ++cpuFallbacks;
        if (op.computeValue != kNoValue)
            values[op.computeValue] = golden[op.computeValue];
        if (op.referenceValue != kNoValue)
            values[op.referenceValue] = golden[op.referenceValue];
    };

    // One span per topological wave (re-emplaced on wave change), so
    // the trace shows the engine's wave pipeline under each query.
    std::optional<obs::Span> waveSpan;
    int spanWave = -1;
    for (std::size_t i = 0; i < program.ops.size(); ++i) {
        const MicroOp &op = program.ops[i];
        if (tel.spansOn() && op.wave != spanWave) {
            waveSpan.emplace(tel, "wave");
            waveSpan->arg("wave",
                          static_cast<std::uint64_t>(op.wave));
            spanWave = op.wave;
        }
        switch (op.kind) {
          case MicroOpKind::Load: {
            values[op.computeValue] = columns.at(op.column);
            assert(values[op.computeValue].size() == numColumns);
            isColumn[op.computeValue] = true;
            // Residency: one write lands the column in DRAM; every
            // query after that reuses it in place.
            result.load.add(cost.hostWrite());
            break;
          }
          case MicroOpKind::Wide: {
            const int slotIndex = placement.gateSlotOf[i];
            if (slotIndex < 0) {
                cpuFallback(op);
                break;
            }
            const GateSlot &slot = placement.gateSlots[slotIndex];
            const BankId bank = slot.context.bank;
            const int width = op.width();

            // Copy-in plan: RowClone from staging for resident
            // columns, host write otherwise. Clone unreliability
            // shrinks this gate's masks.
            BitVector copyMask(numColumns, true);
            std::vector<bool> viaClone(
                static_cast<std::size_t>(width), false);
            for (int j = 0; j < width; ++j) {
                const auto idx = static_cast<std::size_t>(j);
                if (options_.copyIn == CopyInMode::RowClone &&
                    isColumn[op.inputs[idx]] &&
                    slot.stagingRows[idx] != kInvalidRow) {
                    viaClone[idx] = true;
                    copyMask &= slot.stagingMasks[idx];
                }
            }

            VoteSet computeVotes(numColumns);
            VoteSet referenceVotes(numColumns);
            QueryCost opCost;
            bool ok = true;
            for (int trial = 0; ok && trial < trials; ++trial) {
                if (!ops.initReference(bank, op.family,
                                       slot.refRows)) {
                    ok = false;
                    break;
                }
                opCost.add(cost.fracProgram());
                for (int w = 0; w < width + 1; ++w)
                    opCost.add(cost.hostWrite());
                {
                    obs::Span copySpan(tel, "copy_in");
                    copySpan.arg(
                        "operands",
                        static_cast<std::uint64_t>(width));
                    for (int j = 0; j < width; ++j) {
                        const auto idx =
                            static_cast<std::size_t>(j);
                        const BitVector &operand =
                            values[op.inputs[idx]];
                        if (viaClone[idx]) {
                            if (trial == 0) {
                                // The staging copy is the resident
                                // data.
                                bender.writeRow(
                                    bank, slot.stagingRows[idx],
                                    operand);
                            }
                            ops.executeRowClone(
                                bank, slot.stagingRows[idx],
                                slot.computeRows[idx]);
                            opCost.add(cost.copyProgram());
                        } else {
                            bender.writeRow(bank,
                                            slot.computeRows[idx],
                                            operand);
                            opCost.add(cost.hostWrite());
                        }
                    }
                }
                const LogicOpResult trialResult = ops.executeLogic(
                    bank, op.family, slot.refAnchor, slot.comAnchor,
                    slot.refRows, slot.computeRows);
                opCost.add(cost.logicProgram());
                opCost.add(cost.hostRead());
                opCost.add(cost.hostRead());
                computeVotes.add(trialResult.computeResult);
                referenceVotes.add(trialResult.referenceResult);
            }
            if (!ok) {
                cpuFallback(op);
                break;
            }
            commitCost(op, bank, opCost);
            if (op.computeValue != kNoValue) {
                BitVector computeMask = slot.mask(op.family);
                computeMask &= copyMask;
                assemble(op.computeValue, computeMask, computeVotes);
            }
            if (op.referenceValue != kNoValue) {
                const BoolOp inverted = op.family == BoolOp::And
                                            ? BoolOp::Nand
                                            : BoolOp::Nor;
                BitVector referenceMask = slot.mask(inverted);
                referenceMask &= copyMask;
                assemble(op.referenceValue, referenceMask,
                         referenceVotes);
            }
            break;
          }
          case MicroOpKind::Maj: {
            const int slotIndex = placement.majSlotOf[i];
            if (slotIndex < 0) {
                cpuFallback(op);
                break;
            }
            const MajSlot &slot = placement.majSlots[slotIndex];
            const BankId bank = slot.context.bank;
            const int width = op.width();
            assert(static_cast<int>(slot.rows.size()) ==
                   op.activatedRows);
            assert(width + op.constantOnes + op.constantZeros +
                       op.neutralRows ==
                   op.activatedRows);

            // Row assignment within the group: operands first (the
            // measured first row carries operand 0), then the bias
            // constants, then the Frac tiebreaker(s) at the end.
            VoteSet votes(numColumns);
            QueryCost opCost;
            bool ok = true;
            const BitVector onesRow(numColumns, true);
            const BitVector zerosRow(numColumns, false);
            for (int trial = 0; ok && trial < trials; ++trial) {
                // The tiebreaker Fracs first: its helper activation
                // would disturb data written before it.
                for (int n = 0; ok && n < op.neutralRows; ++n) {
                    const RowId neutral =
                        slot.rows[slot.rows.size() - 1 -
                                  static_cast<std::size_t>(n)];
                    if (!ops.fracInit(bank, neutral, slot.rows)) {
                        ok = false;
                        break;
                    }
                    opCost.add(cost.fracProgram());
                    opCost.add(cost.hostWrite());
                    opCost.add(cost.hostWrite());
                }
                if (!ok)
                    break;
                std::size_t next = 0;
                for (int j = 0; j < width; ++j, ++next) {
                    bender.writeRow(
                        bank, slot.rows[next],
                        values[op.inputs[static_cast<std::size_t>(
                            j)]]);
                    opCost.add(cost.hostWrite());
                }
                for (int j = 0; j < op.constantOnes; ++j, ++next) {
                    bender.writeRow(bank, slot.rows[next], onesRow);
                    opCost.add(cost.hostWrite());
                }
                for (int j = 0; j < op.constantZeros; ++j, ++next) {
                    bender.writeRow(bank, slot.rows[next], zerosRow);
                    opCost.add(cost.hostWrite());
                }
                const auto activated = ops.executeMajActivation(
                    bank, slot.rfAnchor, slot.rlAnchor);
                opCost.add(cost.majProgram());
                if (activated.size() != slot.rows.size()) {
                    ok = false;
                    break;
                }
                votes.add(bender.readRow(bank, slot.rows.front()));
                opCost.add(cost.hostRead());
            }
            if (!ok) {
                cpuFallback(op);
                break;
            }
            commitCost(op, bank, opCost);
            assemble(op.computeValue, slot.mask, votes);
            break;
          }
          case MicroOpKind::Not: {
            const int slotIndex = placement.notSlotOf[i];
            if (slotIndex < 0) {
                cpuFallback(op);
                break;
            }
            const NotSlot &slot = placement.notSlots[slotIndex];
            const BankId bank = slot.context.bank;
            const BitVector &input = values[op.inputs.front()];
            VoteSet votes(numColumns);
            QueryCost opCost;
            bool ok = true;
            for (int trial = 0; ok && trial < trials; ++trial) {
                bender.writeRow(bank, slot.srcRow, input);
                // Initialize the destination with the source value so
                // a failed (retaining) cell reads as stale data, not
                // as an accidental success.
                bender.writeRow(bank, slot.dstRow, input);
                opCost.add(cost.hostWrite());
                opCost.add(cost.hostWrite());
                const auto destinations =
                    ops.executeNot(bank, slot.srcRow, slot.dstRow);
                opCost.add(cost.copyProgram());
                if (destinations.empty()) {
                    ok = false;
                    break;
                }
                votes.add(bender.readRow(bank, destinations.front()));
                opCost.add(cost.hostRead());
            }
            if (!ok) {
                cpuFallback(op);
                break;
            }
            commitCost(op, bank, opCost);
            assemble(op.computeValue, slot.mask, votes);
            break;
          }
        }
    }

    // Waves overlap across banks; the command bus serializes within
    // one bank.
    std::map<int, double> waveNs;
    for (const auto &[key, ns] : waveBankNs) {
        waveNs[key.first] = std::max(waveNs[key.first], ns);
        result.bankBusyNs[key.second] += ns;
    }
    for (const auto &[wave, ns] : waveNs)
        result.dram.latencyNs += ns;

    result.output = values[program.result];
    result.golden = golden[program.result];
    result.mask = masks[program.result];
    result.dramCoverage =
        numColumns == 0
            ? 0.0
            : static_cast<double>(result.mask.popcount()) /
                  static_cast<double>(numColumns);
    result.cpuBaseline = cpuBaselineCost(chip, cost.timing(),
                                         program.loadOps(),
                                         numColumns);
    if (tel.metricsOn()) {
        tel.add(tel.counter("engine.executes"));
        tel.add(tel.counter("engine.checked_bits"),
                static_cast<std::uint64_t>(result.checkedBits));
        tel.add(tel.counter("engine.matched_bits"),
                static_cast<std::uint64_t>(result.matchingBits));
        tel.add(tel.counter("engine.dram_commands"),
                static_cast<std::uint64_t>(result.dram.commands));
        if (cpuFallbacks != 0)
            tel.add(tel.counter("engine.cpu_fallbacks"),
                    cpuFallbacks);
        tel.observe(tel.histogram("engine.query_dram_ns",
                                  {1e3, 1e4, 1e5, 1e6, 1e7}),
                    result.dram.latencyNs);
    }
    return result;
}

QueryResult
PudEngine::runOnChip(Chip &chip, std::uint64_t seed,
                     const ExprPool &pool, ExprId root,
                     const std::map<std::string, BitVector> &columns)
    const
{
    const MicroProgram program = compileFor(pool, root, chip);
    const RowAllocator allocator(chip, seed, options_.allocator);
    return execute(program, allocator, chip,
                   hashCombine(seed, options_.benderSeedSalt),
                   columns);
}

} // namespace fcdram::pud
