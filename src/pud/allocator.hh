/**
 * @file
 * PuD row allocator: places the gates of a compiled μprogram onto
 * qualifying (RF, RL) subarray-pair activations of one module.
 *
 * Wide N-input gates need an N:N simultaneous activation pair; NOT
 * needs a pair reaching one destination row. Candidate pairs come
 * from the FleetSession discovery cache (or direct probing for a
 * private chip), and the placement policy is reliability-mask-aware:
 * each candidate's per-column worst-case success probability is
 * evaluated with the analytic model (worst operand ones-count, worst
 * bitline-coupling pattern) and the pairs with the densest reliable
 * masks win. Columns outside a gate's mask are computed on the CPU
 * per-column at execution time (the fallback path), so the mask also
 * bounds which bit positions the DRAM result is trusted for.
 */

#ifndef FCDRAM_PUD_ALLOCATOR_HH
#define FCDRAM_PUD_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/bitvector.hh"
#include "fcdram/session.hh"
#include "pud/compiler.hh"

namespace fcdram::pud {

/** Placement knobs. */
struct AllocatorOptions
{
    /**
     * Per-cell worst-case success-rate threshold (percent) a column
     * must meet to be computed in DRAM. The default keeps the
     * per-trial failure probability of masked columns at or below
     * 1e-4, which majority voting (EngineOptions::redundancy) then
     * suppresses further.
     */
    double maskThresholdPercent = 99.99;

    /** Qualifying pairs ranked per gate width before choosing. */
    int candidatePairsPerWidth = 8;

    /**
     * Distinct pair slots kept per gate width, so independent gates
     * of one wave can be batched onto different subarray pairs.
     */
    int slotsPerWidth = 2;

    /** Probes used by direct (session-less) discovery. */
    int probesPerPair = 4000;
};

/** A placed wide-gate execution site. */
struct GateSlot
{
    PairContext context;

    /** Discovered anchor pair (global rows): RF drives, RL follows. */
    RowId refAnchor = 0;
    RowId comAnchor = 0;

    /** The N reference rows (RF's subarray, global ids). */
    std::vector<RowId> refRows;

    /** The N compute rows (RL's subarray, global ids). */
    std::vector<RowId> computeRows;

    /**
     * Per compute row: a staging row in the same subarray that
     * pair-activates with it (RowClone copy-in source), or
     * kInvalidRow when none was found. Data resident in a staging
     * row reaches its compute row with a 4-command in-DRAM copy
     * instead of a host write.
     */
    std::vector<RowId> stagingRows;

    /**
     * Per compute row: reliable columns of the staging -> compute
     * RowClone (worst-case analytic mask); empty when there is no
     * staging row.
     */
    std::vector<BitVector> stagingMasks;

    /** Reliable columns of the compute side per family (And/Or). */
    BitVector andMask;
    BitVector orMask;

    /** Reliable columns of the reference side (Nand/Nor). */
    BitVector nandMask;
    BitVector norMask;

    int width = 0;

    /** Mask for one executed result side. */
    const BitVector &mask(BoolOp op) const;

    /** Placement score: summed densities of the four masks. */
    double score() const;
};

/** A placed NOT execution site. */
struct NotSlot
{
    PairContext context;
    RowId srcRow = 0; ///< RF (source) global row.
    RowId dstRow = 0; ///< RL (destination) global row.

    /** Reliable columns of the destination row. */
    BitVector mask;
};

/**
 * A placed SiMRA MAJ execution site: an N-row same-subarray
 * simultaneous-activation group (N-row operand group instead of a
 * subarray pair). The executor assigns operand, constant, and
 * neutral rows within the group and reads the result back from the
 * group's first row.
 */
struct MajSlot
{
    PairContext context; ///< bank + host (low) subarray.

    /** Discovered same-subarray anchors (global rows). */
    RowId rfAnchor = 0;
    RowId rlAnchor = 0;

    /** The N activated rows (global ids, sorted). */
    std::vector<RowId> rows;

    int activatedRows = 0;

    /**
     * Reliable columns of the measured (first) row under the
     * worst-case one-cell majority margin — conservative for every
     * gate the group can host.
     */
    BitVector mask;
};

/** Placement of a μprogram onto one module's activation sites. */
struct Placement
{
    /** Per μop index: slot in gateSlots / notSlots / majSlots, or -1. */
    std::vector<int> gateSlotOf;
    std::vector<int> notSlotOf;
    std::vector<int> majSlotOf;

    std::vector<GateSlot> gateSlots;
    std::vector<NotSlot> notSlots;
    std::vector<MajSlot> majSlots;

    /**
     * True if every Wide and Not μop received a slot. μops without a
     * slot (design cannot activate the required shape) execute
     * entirely on the CPU fallback path.
     */
    bool complete = true;
};

/**
 * Discovers and ranks execution sites for one module (or one private
 * chip) and assigns μops to them, spreading the μops of one wave
 * round-robin over the ranked slots so independent gates land on
 * distinct subarray pairs.
 */
class RowAllocator
{
  public:
    /**
     * Session-backed: discovery served by the memoized pair cache.
     * Pair discovery is temperature-independent (decoder expansion is
     * structural), but reliability masks are not: they derive at
     * @p maskTemperature when given, else at the session chip's
     * temperature. QueryService re-derives allocators through this
     * override when a prepared plan goes temperature-stale.
     */
    RowAllocator(const FleetSession &session,
                 const FleetSession::Module &module,
                 AllocatorOptions options = AllocatorOptions(),
                 std::optional<Celsius> maskTemperature = std::nullopt);

    /** Direct: probe a private chip (tests, custom profiles). */
    RowAllocator(const Chip &chip, std::uint64_t seed,
                 AllocatorOptions options = AllocatorOptions());

    const Chip &chip() const { return *chip_; }
    const AllocatorOptions &options() const { return options_; }

    /**
     * Temperature every reliability mask of this allocator was
     * derived at (the chip's temperature when the allocator was
     * constructed). Masks are only valid for executions at the same
     * temperature; the engine rejects or re-derives on mismatch.
     */
    Celsius maskTemperature() const { return temperature_; }

    /** Place every Wide/Not/Maj μop of @p program. */
    Placement place(const MicroProgram &program) const;

    /** Ranked slots for one gate width (cached). */
    const std::vector<GateSlot> &gateSlots(int width) const;

    /** Ranked NOT slots (cached). */
    const std::vector<NotSlot> &notSlots() const;

    /** Ranked SiMRA group slots for one activation size (cached). */
    const std::vector<MajSlot> &majSlots(int activatedRows) const;

  private:
    std::vector<std::pair<RowId, RowId>>
    discover(const PairContext &context, const PairQuery &query) const;

    std::vector<PairContext> directContexts() const;

    const FleetSession *session_ = nullptr;
    FleetSession::Module module_{}; ///< By value: no lifetime ties.
    const Chip *chip_ = nullptr;
    std::uint64_t seed_ = 0;
    AllocatorOptions options_;

    /** Chip temperature the reliability masks were derived at. */
    Celsius temperature_ = kDefaultTemperature;

    // Lazy discovery caches; entries are immutable once published
    // and map nodes are stable, so returned references stay valid.
    mutable std::mutex mutex_;
    mutable std::map<int, std::vector<GateSlot>> slotsByWidth_;
    mutable std::map<int, std::vector<MajSlot>> majSlotsByRows_;
    mutable std::optional<std::vector<NotSlot>> notSlots_;
    mutable std::vector<PairContext> contexts_;
};

/**
 * Extremal operating assumption the per-column success probabilities
 * are evaluated under. Worst pins the minimum margin over operand
 * ones-counts at full bitline coupling (the deployment-mask side);
 * Best pins the maximum margin at zero coupling (the optimistic side
 * of the certifier's error intervals). Both bound every concrete
 * operand pattern the executor can face.
 */
enum class MarginCase : std::uint8_t { Worst, Best };

/**
 * Per-column per-trial success probability of one executed gate side
 * under @p marginCase, indexed by column id. Columns the mechanism
 * does not reach (outside the subarray pair's shared stripe) hold
 * -1.0; empty when the pair does not activate as N:N simultaneous.
 * worstCaseLogicMask is exactly the threshold cut of the Worst
 * vector, and the plan certifier (verify/certify) seeds its gate
 * flip-probability intervals from the [Worst, Best] pair.
 */
std::vector<double>
logicSuccessProbabilities(const Chip &chip, BankId bank, BoolOp op,
                          RowId refGlobal, RowId comGlobal,
                          Celsius temperature, MarginCase marginCase);

/** Per-column success probabilities of a NOT destination row. */
std::vector<double>
notSuccessProbabilities(const Chip &chip, BankId bank, RowId srcGlobal,
                        RowId dstGlobal, Celsius temperature,
                        MarginCase marginCase);

/** Per-column success probabilities of an in-subarray RowClone. */
std::vector<double>
rowCloneSuccessProbabilities(const Chip &chip, BankId bank,
                             RowId srcGlobal, RowId dstGlobal,
                             Celsius temperature,
                             MarginCase marginCase);

/**
 * Per-column success probabilities of a SiMRA MAJ group's measured
 * (first) row. Worst evaluates the one-deciding-cell margin on the
 * penalized high-common-mode side; Best the easiest ones-count at
 * zero coupling. Empty when the pair does not expand to
 * @p activatedRows rows.
 */
std::vector<double>
majSuccessProbabilities(const Chip &chip, BankId bank, RowId rfGlobal,
                        RowId rlGlobal, int activatedRows,
                        Celsius temperature, MarginCase marginCase);

/**
 * Worst-case reliable mask of one executed gate side: for every
 * shared column, the minimum success probability over all operand
 * ones-counts at full bitline coupling must meet @p thresholdPercent.
 * Empty when the pair does not activate as N:N simultaneous.
 *
 * All worst-case masks are evaluated at @p temperature, which must
 * match the chip temperature at execution time (the margin model is
 * temperature-dependent).
 *
 * @param op And/Or measure the compute side, Nand/Nor the reference
 *        side (the executed gate is the same).
 */
BitVector worstCaseLogicMask(const Chip &chip, BankId bank, BoolOp op,
                             RowId refGlobal, RowId comGlobal,
                             double thresholdPercent,
                             Celsius temperature);

/** Worst-case reliable mask of a NOT destination row. */
BitVector worstCaseNotMask(const Chip &chip, BankId bank,
                           RowId srcGlobal, RowId dstGlobal,
                           double thresholdPercent,
                           Celsius temperature);

/**
 * Worst-case reliable mask of an in-subarray RowClone from
 * @p srcGlobal onto @p dstGlobal (all columns participate; RowClone
 * is not confined to the shared stripe).
 */
BitVector worstCaseRowCloneMask(const Chip &chip, BankId bank,
                                RowId srcGlobal, RowId dstGlobal,
                                double thresholdPercent,
                                Celsius temperature);

/**
 * Worst-case reliable mask of a SiMRA MAJ group's measured (first)
 * row: the one-deciding-cell majority margin (the minimum any hosted
 * gate can face, taken on the penalized high-common-mode side) at
 * full bitline coupling, for every column of the subarray (the
 * in-subarray mechanism is not confined to a shared stripe). Empty
 * when the pair does not expand to @p activatedRows rows.
 */
BitVector worstCaseMajMask(const Chip &chip, BankId bank,
                           RowId rfGlobal, RowId rlGlobal,
                           int activatedRows, double thresholdPercent,
                           Celsius temperature);

} // namespace fcdram::pud

#endif // FCDRAM_PUD_ALLOCATOR_HH
