/**
 * @file
 * Fault-aware in-DRAM computing: profile a chip's per-cell
 * reliability with the analytic model, build >90% masks (the paper's
 * footnote-8 methodology), and show how masked in-DRAM NOT/AND reach
 * near-perfect effective accuracy while unmasked computation does
 * not. This is what any deployment on COTS chips has to do — and the
 * second half shows the production form of it: the QueryService
 * prepared-query lifecycle bakes those reliability masks into a
 * cached PlacementPlan, so repeated masked queries stop re-paying
 * the mask derivation.
 */

#include <iostream>
#include <memory>

#include "common/table.hh"
#include "dram/openbitline.hh"
#include "exampleutil.hh"
#include "fcdram/analyzer.hh"
#include "fcdram/golden.hh"
#include "fcdram/ops.hh"
#include "fcdram/reliablemask.hh"
#include "pud/service.hh"

using namespace fcdram;

namespace {

struct Accuracy
{
    double unmasked = 0.0;
    double masked = 0.0;
    double density = 0.0;
};

Accuracy
measureNot(Chip &chip, DramBender &bender, int trials)
{
    const GeometryConfig &geometry = chip.geometry();
    Ops ops(bender);
    const auto pairs = findActivationPairs(chip, 2, 2, 1, 3);
    if (pairs.empty())
        return {};
    const RowId src = composeRow(geometry, 0, pairs.front().first);
    const RowId dst = composeRow(geometry, 1, pairs.front().second);

    const ReliableMask profiler(chip, 90.0);
    const BitVector mask = profiler.notMask(0, src, dst);

    Rng rng(5);
    std::size_t total = 0;
    std::size_t ok = 0;
    std::size_t masked_total = 0;
    std::size_t masked_ok = 0;
    for (int trial = 0; trial < trials; ++trial) {
        BitVector pattern(static_cast<std::size_t>(geometry.columns));
        pattern.randomize(rng);
        bender.writeRow(0, src, pattern);
        const auto dests = ops.executeNot(0, src, dst);
        for (const RowId row : dests) {
            const BitVector readback = bender.readRow(0, row);
            for (const ColId col : sharedColumns(geometry, 0, 1)) {
                const bool correct =
                    readback.get(col) == !pattern.get(col);
                ++total;
                ok += correct ? 1 : 0;
                if (mask.get(col)) {
                    ++masked_total;
                    masked_ok += correct ? 1 : 0;
                }
            }
        }
    }
    Accuracy accuracy;
    accuracy.unmasked = total == 0 ? 0.0
                                   : 100.0 * static_cast<double>(ok) /
                                         static_cast<double>(total);
    accuracy.masked =
        masked_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(masked_ok) /
                  static_cast<double>(masked_total);
    accuracy.density = ReliableMask::maskDensity(mask) * 2.0;
    return accuracy;
}

} // namespace

int
main()
{
    // One shared session: each characterized design is a fleet
    // module; chips for the mutating trials are checked out of it.
    CampaignConfig config;
    config.geometry.numBanks = 1;
    const auto sessionPtr = std::make_shared<FleetSession>(config);
    FleetSession &session = *sessionPtr;

    std::cout << "Fault-aware in-DRAM NOT across the SK Hynix designs "
                 "(>90% masks, 40 trials)\n\n";
    Table table({"design", "unmasked accuracy %", "masked accuracy %",
                 "mask density (of shared cols) %"});
    for (const auto &[density, die, speed] :
         std::vector<std::tuple<int, char, std::uint32_t>>{
             {4, 'A', 2133}, {4, 'M', 2666}, {8, 'A', 2400},
             {8, 'M', 2666}}) {
        exampleutil::requireModule(session, Manufacturer::SkHynix,
                                   density, die, speed);
        // The fleet spec's organization may differ (x4 modules); the
        // example characterizes the x8 variant of each design.
        const ChipProfile profile = ChipProfile::make(
            Manufacturer::SkHynix, density, die, 8, speed);
        exampleutil::CheckedOutChip checkout(
            session, profile,
            /*chipSeed=*/1000 + density + die, /*benderSeed=*/7);
        const Accuracy accuracy =
            measureNot(checkout.chip, checkout.bender, 40);
        table.addRow();
        table.addCell(profile.label());
        table.addCell(accuracy.unmasked, 2);
        table.addCell(accuracy.masked, 2);
        table.addCell(100.0 * accuracy.density, 1);
    }
    table.print(std::cout);

    std::cout << "\nMasked computation trades coverage (mask density) "
                 "for near-perfect accuracy,\nmirroring the paper's "
                 "use of >90% cells for its temperature studies.\n";

    // ---- The production form: masked queries, prepared once ------
    // The QueryService bakes the same worst-case reliability masks
    // into a cached PlacementPlan at prepare time; every later
    // submit of the query reuses them (and per-column CPU fallback
    // repairs the columns outside the mask, so the hybrid result is
    // exact).
    using namespace fcdram::pud;
    const FleetSession::Module &module = exampleutil::requireModule(
        session, Manufacturer::SkHynix, 4, 'A', 2133);
    pud::EngineOptions queryOptions;
    queryOptions.redundancy = 3;
    QueryService service(sessionPtr, queryOptions);

    ExprPool pool;
    const ExprId masked = pool.mkAnd(
        pool.mkNot(pool.column("faulty")), pool.column("data"));
    const auto bits = static_cast<std::size_t>(
        session.config().geometry.columns);
    const auto columns = PudEngine::randomColumns(
        {"data", "faulty"}, bits, /*seed=*/77);

    const PreparedQuery prepared = service.prepare(pool, masked);
    const BoundQuery bound = prepared.bind(columns);
    const BatchQueryResult cold =
        service.collect(service.submit({bound}, module));
    const BatchQueryResult warm =
        service.collect(service.submit({bound}, module));
    const pud::QueryResult &result =
        cold.queries.front().modules.front().result;
    if (result.output != result.golden ||
        result.matchingBits != result.checkedBits) {
        std::cerr << "masked query diverged from the golden model\n";
        return 1;
    }
    if (warm.cache.placements != 0 || warm.cache.hits == 0) {
        std::cerr << "warm submit re-derived the masked placement\n";
        return 1;
    }
    std::cout << "\nPrepared masked query (~faulty & data) on "
              << module.spec->profile().label() << ": "
              << result.checkedBits << " bits trusted to DRAM at "
              << result.accuracyPercent()
              << "% accuracy; warm resubmit hit the plan cache ("
              << warm.cache.hits
              << " hits, 0 mask re-derivations).\n";
    return 0;
}
