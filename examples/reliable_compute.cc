/**
 * @file
 * Fault-aware in-DRAM computing: profile a chip's per-cell
 * reliability with the analytic model, build >90% masks (the paper's
 * footnote-8 methodology), and show how masked in-DRAM NOT/AND reach
 * near-perfect effective accuracy while unmasked computation does
 * not. This is what any deployment on COTS chips has to do.
 */

#include <iostream>

#include "common/table.hh"
#include "dram/openbitline.hh"
#include "exampleutil.hh"
#include "fcdram/analyzer.hh"
#include "fcdram/golden.hh"
#include "fcdram/ops.hh"
#include "fcdram/reliablemask.hh"

using namespace fcdram;

namespace {

struct Accuracy
{
    double unmasked = 0.0;
    double masked = 0.0;
    double density = 0.0;
};

Accuracy
measureNot(Chip &chip, DramBender &bender, int trials)
{
    const GeometryConfig &geometry = chip.geometry();
    Ops ops(bender);
    const auto pairs = findActivationPairs(chip, 2, 2, 1, 3);
    if (pairs.empty())
        return {};
    const RowId src = composeRow(geometry, 0, pairs.front().first);
    const RowId dst = composeRow(geometry, 1, pairs.front().second);

    const ReliableMask profiler(chip, 90.0);
    const BitVector mask = profiler.notMask(0, src, dst);

    Rng rng(5);
    std::size_t total = 0;
    std::size_t ok = 0;
    std::size_t masked_total = 0;
    std::size_t masked_ok = 0;
    for (int trial = 0; trial < trials; ++trial) {
        BitVector pattern(static_cast<std::size_t>(geometry.columns));
        pattern.randomize(rng);
        bender.writeRow(0, src, pattern);
        const auto dests = ops.executeNot(0, src, dst);
        for (const RowId row : dests) {
            const BitVector readback = bender.readRow(0, row);
            for (const ColId col : sharedColumns(geometry, 0, 1)) {
                const bool correct =
                    readback.get(col) == !pattern.get(col);
                ++total;
                ok += correct ? 1 : 0;
                if (mask.get(col)) {
                    ++masked_total;
                    masked_ok += correct ? 1 : 0;
                }
            }
        }
    }
    Accuracy accuracy;
    accuracy.unmasked = total == 0 ? 0.0
                                   : 100.0 * static_cast<double>(ok) /
                                         static_cast<double>(total);
    accuracy.masked =
        masked_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(masked_ok) /
                  static_cast<double>(masked_total);
    accuracy.density = ReliableMask::maskDensity(mask) * 2.0;
    return accuracy;
}

} // namespace

int
main()
{
    // One shared session: each characterized design is a fleet
    // module; chips for the mutating trials are checked out of it.
    CampaignConfig config;
    config.geometry.numBanks = 1;
    FleetSession session(config);

    std::cout << "Fault-aware in-DRAM NOT across the SK Hynix designs "
                 "(>90% masks, 40 trials)\n\n";
    Table table({"design", "unmasked accuracy %", "masked accuracy %",
                 "mask density (of shared cols) %"});
    for (const auto &[density, die, speed] :
         std::vector<std::tuple<int, char, std::uint32_t>>{
             {4, 'A', 2133}, {4, 'M', 2666}, {8, 'A', 2400},
             {8, 'M', 2666}}) {
        exampleutil::requireModule(session, Manufacturer::SkHynix,
                                   density, die, speed);
        // The fleet spec's organization may differ (x4 modules); the
        // example characterizes the x8 variant of each design.
        const ChipProfile profile = ChipProfile::make(
            Manufacturer::SkHynix, density, die, 8, speed);
        exampleutil::CheckedOutChip checkout(
            session, profile,
            /*chipSeed=*/1000 + density + die, /*benderSeed=*/7);
        const Accuracy accuracy =
            measureNot(checkout.chip, checkout.bender, 40);
        table.addRow();
        table.addCell(profile.label());
        table.addCell(accuracy.unmasked, 2);
        table.addCell(accuracy.masked, 2);
        table.addCell(100.0 * accuracy.density, 1);
    }
    table.print(std::cout);

    std::cout << "\nMasked computation trades coverage (mask density) "
                 "for near-perfect accuracy,\nmirroring the paper's "
                 "use of >90% cells for its temperature studies.\n";
    return 0;
}
