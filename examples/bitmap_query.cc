/**
 * @file
 * Bitmap-index query acceleration through the PuD query engine: the
 * bulk-bitwise workload that motivates Processing-using-DRAM. A table
 * of records is indexed by bitmap columns (one bit per record per
 * predicate); queries are Boolean expressions over those bitmaps.
 *
 * The example is a thin client of src/pud/: it builds query
 * expressions, and the engine compiles them to wide-gate μprograms,
 * places the gates on qualifying activation pairs with reliability
 * masks, executes them in simulated DRAM (per-column CPU fallback on
 * the unreliable bit positions), and reports accuracy plus DRAM
 * command count, analytic latency/energy, and the CPU scan baseline.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "exampleutil.hh"
#include "pud/engine.hh"

using namespace fcdram;
using namespace fcdram::pud;

int
main()
{
    // One shared session: fleet inventory + geometry + chip checkout.
    CampaignConfig config;
    config.geometry.columns = 256;
    auto session = std::make_shared<FleetSession>(config);
    const FleetSession::Module &module = exampleutil::requireModule(
        *session, Manufacturer::SkHynix, 4, 'A', 2133);
    const auto bits =
        static_cast<std::size_t>(config.geometry.columns);

    std::cout << "Bitmap-index queries on "
              << module.spec->profile().label() << "\n";
    std::cout << "Each DRAM column = one record; predicates are "
                 "bitmap rows.\n\n";

    // Predicate bitmaps ("age>30", "region=EU", ...).
    ExprPool pool;
    const std::vector<std::string> names = {
        "age>30", "region=EU", "premium", "active",
        "churned", "mobile",    "opt-in",  "trial"};
    std::vector<ExprId> predicates;
    for (const std::string &name : names)
        predicates.push_back(pool.column(name));
    const auto data =
        PudEngine::randomColumns(names, bits, /*seed=*/99);

    // Query shapes: a wide conjunction, a wide disjunction, a nested
    // filter, and a parity (XOR decomposes into the free-NAND basis).
    struct Query
    {
        const char *label;
        ExprId root;
    };
    const std::vector<Query> queries = {
        {"8-way AND", pool.mkAnd(predicates)},
        {"8-way OR", pool.mkOr(predicates)},
        {"(a&~b)|(c&d)",
         pool.mkOr(pool.mkAnd(predicates[0],
                              pool.mkNot(predicates[1])),
                   pool.mkAnd(predicates[2], predicates[3]))},
        {"a^b", pool.mkXor(predicates[0], predicates[1])},
    };

    EngineOptions options;
    options.redundancy = 3; // Majority vote per gate.
    PudEngine engine(session, options);

    Table table({"query", "gates", "waves", "DRAM cmds", "latency ns",
                 "energy nJ", "DRAM cols %", "masked acc %",
                 "CPU scan ns", "matches"});
    for (const Query &query : queries) {
        const QueryResult result =
            engine.run(module, pool, query.root, data);
        std::size_t matches = 0;
        for (std::size_t i = 0; i < result.output.size(); ++i)
            matches += result.output.get(i) ? 1 : 0;
        table.addRow();
        table.addCell(std::string(query.label));
        table.addCell(
            static_cast<std::uint64_t>(result.wideOps +
                                       result.notOps));
        table.addCell(static_cast<std::uint64_t>(result.waves));
        table.addCell(result.dram.commands);
        table.addCell(result.dram.latencyNs, 1);
        table.addCell(result.dram.energyNj, 1);
        table.addCell(100.0 * result.dramCoverage, 1);
        table.addCell(result.accuracyPercent(), 2);
        table.addCell(result.cpuBaseline.latencyNs, 1);
        table.addCell(static_cast<std::uint64_t>(matches));
        if (!result.placed || result.checkedBits == 0) {
            std::cerr << "in-DRAM path is dead for " << query.label
                      << " (no placement / no reliable columns)\n";
            return 1;
        }
        if (result.output != result.golden) {
            std::cerr << "hybrid result diverged from the golden "
                         "model for "
                      << query.label << "\n";
            return 1;
        }
    }
    table.print(std::cout);

    std::cout
        << "\nThe 8-way AND compiles to ONE 8-input gate (4 DRAM "
           "commands in the violated\nsequence) instead of seven "
           "chained 2-input ANDs; unreliable columns fall back\nto "
           "the CPU per bit position, so the hybrid result always "
           "matches the golden\nmodel. See bench_pud_query for the "
           "fleet-wide sweep.\n";
    return 0;
}
