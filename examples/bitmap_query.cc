/**
 * @file
 * Bitmap-index query acceleration: the bulk-bitwise workload that
 * motivates Processing-using-DRAM. A table of records is indexed by
 * bitmap columns (one bit per record per predicate); a conjunctive
 * query is a wide AND across bitmaps, a disjunctive one a wide OR.
 *
 * The example runs the same queries on the CPU (golden model) and
 * in-DRAM through the FCDRAM operations, using a reliability mask to
 * confine the in-DRAM computation to dependable columns, and reports
 * accuracy plus the DRAM command count per query.
 */

#include <iostream>

#include "common/table.hh"
#include "dram/openbitline.hh"
#include "fcdram/golden.hh"
#include "fcdram/ops.hh"
#include "fcdram/reliablemask.hh"
#include "fcdram/session.hh"

using namespace fcdram;

int
main()
{
    // One shared session: fleet inventory + geometry + chip checkout.
    CampaignConfig config;
    config.geometry.columns = 256;
    FleetSession session(config);
    const GeometryConfig &geometry = session.config().geometry;
    const FleetSession::Module *module =
        session.findModule(Manufacturer::SkHynix, 4, 'A', 2133);
    if (module == nullptr) {
        std::cerr << "module not in the Table-1 fleet\n";
        return 1;
    }
    const ChipProfile profile = module->spec->profile();
    Chip chip = session.checkoutChip(profile, /*seed=*/42);
    DramBender bender(chip, /*sessionSeed=*/7);
    Ops ops(bender);

    std::cout << "Bitmap-index query demo on " << profile.label()
              << "\n";
    std::cout << "Each DRAM row column = one record; predicates are "
                 "bitmap rows.\n\n";

    // Find a 4:4 activation pair: a 4-predicate query in one shot.
    const int predicates = 4;
    const auto pairs =
        findActivationPairs(chip, predicates, predicates, 1, 3);
    if (pairs.empty()) {
        std::cerr << "no activation pair found\n";
        return 1;
    }
    const ActivationSets sets = chip.decoder().neighborActivation(
        pairs.front().first, pairs.front().second);
    const RowId ref_anchor = composeRow(geometry, 0, pairs.front().first);
    const RowId com_anchor =
        composeRow(geometry, 1, pairs.front().second);
    std::vector<RowId> ref_rows;
    std::vector<RowId> com_rows;
    for (const RowId local : sets.firstRows)
        ref_rows.push_back(composeRow(geometry, 0, local));
    for (const RowId local : sets.secondRows)
        com_rows.push_back(composeRow(geometry, 1, local));

    // Reliability masks from a profiling pass (>95% cells).
    const ReliableMask profiler(chip, 95.0);
    const BitVector and_mask =
        profiler.logicMask(0, BoolOp::And, ref_anchor, com_anchor);
    const BitVector or_mask =
        profiler.logicMask(0, BoolOp::Or, ref_anchor, com_anchor);
    std::cout << "Reliable columns (>=95% cells): AND "
              << and_mask.popcount() << "/" << geometry.columns / 2
              << " shared, OR " << or_mask.popcount() << "/"
              << geometry.columns / 2 << " shared\n\n";

    // Synthesize predicate bitmaps ("age>30", "region=EU", ...).
    Rng rng(99);
    std::vector<BitVector> bitmaps(
        predicates,
        BitVector(static_cast<std::size_t>(geometry.columns)));
    for (auto &bitmap : bitmaps)
        bitmap.randomize(rng);

    Table table({"query", "records checked", "CPU matches",
                 "DRAM matches", "bit accuracy %", "DRAM commands"});

    for (const BoolOp op : {BoolOp::And, BoolOp::Or}) {
        const BitVector &mask =
            op == BoolOp::And ? and_mask : or_mask;
        if (!ops.initReference(0, op, ref_rows)) {
            std::cerr << "frac init failed\n";
            return 1;
        }
        for (std::size_t i = 0; i < com_rows.size(); ++i)
            bender.writeRow(0, com_rows[i], bitmaps[i]);
        const LogicOpResult result = ops.executeLogic(
            0, op, ref_anchor, com_anchor, ref_rows, com_rows);
        const BitVector golden = goldenOp(op, bitmaps);

        std::size_t checked = 0;
        std::size_t cpu_matches = 0;
        std::size_t dram_matches = 0;
        std::size_t correct = 0;
        for (const ColId col : result.columns) {
            if (!mask.get(col))
                continue; // Unreliable record slot: fall back to CPU.
            ++checked;
            cpu_matches += golden.get(col) ? 1 : 0;
            dram_matches += result.computeResult.get(col) ? 1 : 0;
            correct += result.computeResult.get(col) == golden.get(col)
                           ? 1
                           : 0;
        }
        table.addRow();
        table.addCell(std::string(toString(op)) + " of " +
                      std::to_string(predicates) + " bitmaps");
        table.addCell(static_cast<std::uint64_t>(checked));
        table.addCell(static_cast<std::uint64_t>(cpu_matches));
        table.addCell(static_cast<std::uint64_t>(dram_matches));
        table.addCell(checked == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(correct) /
                                static_cast<double>(checked),
                      2);
        // ACT + PRE + ACT + PRE regardless of the predicate count:
        // the in-DRAM query cost is O(1) in N.
        table.addCell(static_cast<std::uint64_t>(4));
    }
    table.print(std::cout);

    std::cout << "\nA CPU scan reads " << predicates
              << " bitmaps (one per predicate); the in-DRAM query is "
                 "a single 4-command\nviolated-timing sequence "
                 "regardless of the predicate count.\n";
    return 0;
}
