/**
 * @file
 * Bitmap-index query acceleration through the PuD prepared-query
 * lifecycle: the bulk-bitwise workload that motivates
 * Processing-using-DRAM. A table of records is indexed by bitmap
 * columns (one bit per record per predicate); queries are Boolean
 * expressions over those bitmaps, and a production index serves the
 * same query shapes over and over on resident data.
 *
 * The example is a thin client of src/pud/service.hh: queries are
 * prepared once (compiled to wide-gate μprograms and, lazily per
 * chip, placed on qualifying activation pairs with reliability
 * masks), bound to the predicate bitmaps, and submitted as ONE batch.
 * A second submit of the same prepared batch is served entirely from
 * the plan cache — the amortization the one-shot API could not
 * express — and per-column CPU fallback on the unreliable bit
 * positions keeps every hybrid result equal to the golden model.
 */

#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "common/table.hh"
#include "exampleutil.hh"
#include "pud/service.hh"

using namespace fcdram;
using namespace fcdram::pud;

int
main()
{
    // One shared session: fleet inventory + geometry + chip checkout.
    CampaignConfig config;
    config.geometry.columns = 256;
    auto session = std::make_shared<FleetSession>(config);
    const FleetSession::Module &module = exampleutil::requireModule(
        *session, Manufacturer::SkHynix, 4, 'A', 2133);
    const auto bits =
        static_cast<std::size_t>(config.geometry.columns);

    std::cout << "Bitmap-index queries on "
              << module.spec->profile().label() << "\n";
    std::cout << "Each DRAM column = one record; predicates are "
                 "bitmap rows.\n\n";

    // Predicate bitmaps ("age>30", "region=EU", ...).
    ExprPool pool;
    const std::vector<std::string> names = {
        "age>30", "region=EU", "premium", "active",
        "churned", "mobile",    "opt-in",  "trial"};
    std::vector<ExprId> predicates;
    for (const std::string &name : names)
        predicates.push_back(pool.column(name));
    // One shared copy of the resident bitmaps for the whole batch.
    const auto data = std::make_shared<
        const std::map<std::string, BitVector>>(
        PudEngine::randomColumns(names, bits, /*seed=*/99));

    // Query shapes: a wide conjunction, a wide disjunction, a nested
    // filter, and a parity (XOR decomposes into the free-NAND basis).
    struct Query
    {
        const char *label;
        ExprId root;
    };
    const std::vector<Query> queries = {
        {"8-way AND", pool.mkAnd(predicates)},
        {"8-way OR", pool.mkOr(predicates)},
        {"(a&~b)|(c&d)",
         pool.mkOr(pool.mkAnd(predicates[0],
                              pool.mkNot(predicates[1])),
                   pool.mkAnd(predicates[2], predicates[3]))},
        {"a^b", pool.mkXor(predicates[0], predicates[1])},
    };

    EngineOptions options;
    options.redundancy = 3; // Majority vote per gate.
    QueryService service(session, options);

    // prepare once, bind the resident bitmaps, submit as one batch.
    std::vector<BoundQuery> batch;
    for (const Query &query : queries)
        batch.push_back(service.prepare(pool, query.root).bind(data));
    const BatchQueryResult cold =
        service.collect(service.submit(batch, module));

    Table table({"query", "gates", "waves", "DRAM cmds", "latency ns",
                 "energy nJ", "DRAM cols %", "masked acc %",
                 "CPU scan ns", "matches"});
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const QueryResult &result =
            cold.queries[q].modules.front().result;
        std::size_t matches = 0;
        for (std::size_t i = 0; i < result.output.size(); ++i)
            matches += result.output.get(i) ? 1 : 0;
        table.addRow();
        table.addCell(std::string(queries[q].label));
        table.addCell(
            static_cast<std::uint64_t>(result.wideOps +
                                       result.notOps +
                                       result.majOps));
        table.addCell(static_cast<std::uint64_t>(result.waves));
        table.addCell(result.dram.commands);
        table.addCell(result.dram.latencyNs, 1);
        table.addCell(result.dram.energyNj, 1);
        table.addCell(100.0 * result.dramCoverage, 1);
        table.addCell(result.accuracyPercent(), 2);
        table.addCell(result.cpuBaseline.latencyNs, 1);
        table.addCell(static_cast<std::uint64_t>(matches));
        if (!result.placed || result.checkedBits == 0) {
            std::cerr << "in-DRAM path is dead for "
                      << queries[q].label
                      << " (no placement / no reliable columns)\n";
            return 1;
        }
        if (result.output != result.golden) {
            std::cerr << "hybrid result diverged from the golden "
                         "model for "
                      << queries[q].label << "\n";
            return 1;
        }
    }
    table.print(std::cout);

    // The production pattern: the same prepared batch again. No
    // compilation, no slot ranking, no mask derivation — plan-cache
    // hits only — and bit-identical results.
    const BatchQueryResult warm =
        service.collect(service.submit(batch, module));
    if (warm.cache.compiles != 0 || warm.cache.placements != 0 ||
        warm.cache.hits == 0) {
        std::cerr << "warm submit was not served from the plan "
                     "cache\n";
        return 1;
    }
    for (std::size_t q = 0; q < queries.size(); ++q) {
        if (warm.queries[q].modules.front().result.output !=
            cold.queries[q].modules.front().result.output) {
            std::cerr << "warm result diverged for "
                      << queries[q].label << "\n";
            return 1;
        }
    }
    std::cout << "\nWarm resubmit of the prepared batch: "
              << warm.cache.hits << " plan-cache hits, 0 compiles, "
              << "0 placements (cold pass: "
              << cold.cache.compiles << " compiles, "
              << cold.cache.placements << " placements).\n";
    std::cout << "Shared copy-in staging: " << cold.naiveLoad.commands
              << " load cmds naive vs " << cold.residentLoad.commands
              << " with the batch's resident columns deduped.\n";

    std::cout
        << "\nThe 8-way AND compiles to ONE 8-input gate instead of "
           "seven chained 2-input\nANDs; unreliable columns fall "
           "back to the CPU per bit position, so the hybrid\nresult "
           "always matches the golden model. See bench_pud_query "
           "for the fleet-wide\nsweep and the cold-vs-warm "
           "plan-cache section.\n";
    return 0;
}
