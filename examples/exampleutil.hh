/**
 * @file
 * Shared helpers for the example binaries: Table-1 module lookup with
 * a consistent error path, and a chip + DramBender checkout bundle,
 * so every example spends its lines on the workload instead of on
 * session boilerplate.
 */

#ifndef FCDRAM_EXAMPLES_EXAMPLEUTIL_HH
#define FCDRAM_EXAMPLES_EXAMPLEUTIL_HH

#include <cstdlib>
#include <iostream>

#include "bender/bender.hh"
#include "fcdram/session.hh"

namespace fcdram::exampleutil {

/**
 * Look up a Table-1 module by design, or exit(1) with a message on
 * stderr when the fleet does not contain it.
 */
inline const FleetSession::Module &
requireModule(const FleetSession &session, Manufacturer manufacturer,
              int densityGbit, char dieRevision, std::uint32_t speedMt)
{
    const FleetSession::Module *module = session.findModule(
        manufacturer, densityGbit, dieRevision, speedMt);
    if (module == nullptr) {
        std::cerr << "design " << toString(manufacturer) << " "
                  << densityGbit << "Gb " << dieRevision << "-die @"
                  << speedMt
                  << "MT/s is not in the Table-1 fleet\n";
        std::exit(1);
    }
    return *module;
}

/**
 * A private chip checked out of the session plus the DramBender
 * session driving it — the pair every command-level example needs.
 */
struct CheckedOutChip
{
    Chip chip;
    DramBender bender;

    CheckedOutChip(const FleetSession &session,
                   const ChipProfile &profile, std::uint64_t chipSeed,
                   std::uint64_t benderSeed)
        : chip(session.checkoutChip(profile, chipSeed)),
          bender(chip, benderSeed)
    {
    }

    // bender references chip; copying/moving would leave it driving
    // the old instance.
    CheckedOutChip(const CheckedOutChip &) = delete;
    CheckedOutChip &operator=(const CheckedOutChip &) = delete;
};

} // namespace fcdram::exampleutil

#endif // FCDRAM_EXAMPLES_EXAMPLEUTIL_HH
