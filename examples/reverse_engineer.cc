/**
 * @file
 * Reverse-engineering walkthrough: starting from a chip with unknown
 * internals (scrambled physical row order), recover
 *  1) the subarray boundaries via RowClone probing (Section 4.2),
 *  2) the physical row order via RowHammer disturbance (Section 5.2),
 *  3) the NRF:NRL activation behaviour via the WR-readback classifier,
 * exactly as the paper's methodology does on real chips.
 */

#include <iostream>

#include "common/table.hh"
#include "exampleutil.hh"
#include "fcdram/classifier.hh"
#include "fcdram/mapper.hh"
#include "fcdram/roworder.hh"

using namespace fcdram;

int
main()
{
    // One shared session carries the under-test geometry; the chip
    // under reverse engineering is checked out of it.
    CampaignConfig config;
    config.geometry = GeometryConfig();
    config.geometry.numBanks = 1;
    config.geometry.subarraysPerBank = 4;
    config.geometry.rowsPerSubarray = 64;
    config.geometry.columns = 128;
    config.geometry.scrambleRowOrder = true; // Unknown internal order.
    FleetSession session(config);
    const GeometryConfig &geometry = session.config().geometry;
    const FleetSession::Module &module = exampleutil::requireModule(
        session, Manufacturer::SkHynix, 4, 'M', 2666);
    exampleutil::CheckedOutChip checkout(session,
                                         module.spec->profile(),
                                         /*chipSeed=*/77,
                                         /*benderSeed=*/5);
    const ChipProfile &profile = checkout.chip.profile();
    DramBender &bender = checkout.bender;

    std::cout << "Reverse engineering " << profile.label()
              << " (scrambled row order)\n\n";

    // 1) Subarray boundaries via RowClone probing.
    SubarrayMapper mapper(bender, 3);
    const SubarrayMap map = mapper.mapBank(0);
    std::cout << "1) RowClone probing found " << map.numSubarrays()
              << " subarrays; boundaries at rows:";
    for (const RowId boundary : map.boundaries)
        std::cout << " " << boundary;
    std::cout << "\n   (ground truth: " << geometry.subarraysPerBank
              << " subarrays of " << geometry.rowsPerSubarray
              << " rows)\n\n";

    // 2) Physical row order via RowHammer.
    RowOrderMapper order_mapper(bender);
    const RowOrder order = order_mapper.mapSubarray(0, 1);
    std::cout << "2) RowHammer disturbance recovered the physical "
                 "order of subarray 1\n   ("
              << order.physicalOrder.size() << "/"
              << geometry.rowsPerSubarray
              << " rows chained). First eight logical rows in "
                 "physical order:";
    for (std::size_t i = 0; i < 8 && i < order.physicalOrder.size();
         ++i)
        std::cout << " " << order.physicalOrder[i];
    std::cout << "\n   Region of logical row 0 relative to the lower "
                 "stripe: "
              << toString(order.regionFor(0, true)) << "\n\n";

    // 3) Activation-pattern classification via WR readback.
    ActivationClassifier classifier(bender, 9);
    const CoverageStats stats = classifier.sampleCoverage(0, 1, 2, 60);
    std::cout << "3) WR-readback classification of 60 random (RF, RL) "
                 "pairs between subarrays 1 and 2:\n";
    Table table({"NRF:NRL", "pairs", "coverage %"});
    for (const auto &[type, count] : stats.counts) {
        table.addRow();
        table.addCell(type);
        table.addCell(count);
        table.addCell(100.0 * stats.coverage(type), 1);
    }
    table.print(std::cout);
    std::cout << "\nWith the map, order, and activation classes in "
                 "hand, the chip is ready for\ntargeted NOT/AND/OR "
                 "characterization (see bench/).\n";
    return 0;
}
