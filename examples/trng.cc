/**
 * @file
 * True random number generation from DRAM (the extension the paper's
 * Section 8.1 proposes): metastable charge sharing of Frac-initialized
 * rows yields thermal-noise-driven bits; calibration selects entropy
 * cells and von Neumann whitening removes residual bias.
 */

#include <iostream>

#include "common/table.hh"
#include "exampleutil.hh"
#include "fcdram/trng.hh"

using namespace fcdram;

int
main()
{
    // One shared session supplies the design; the TRNG wants full
    // activation coverage, so the checked-out chip tweaks the
    // decoder gate of the fleet profile.
    CampaignConfig config;
    config.geometry = GeometryConfig::tiny();
    config.geometry.columns = 256;
    FleetSession session(config);
    const GeometryConfig &geometry = session.config().geometry;
    const FleetSession::Module &module = exampleutil::requireModule(
        session, Manufacturer::SkHynix, 4, 'A', 2133);
    ChipProfile profile = module.spec->profile();
    profile.decoder.coverageGate = 1.0;
    exampleutil::CheckedOutChip checkout(session, profile,
                                         /*chipSeed=*/2024,
                                         /*benderSeed=*/5);
    DramBender &bender = checkout.bender;

    std::cout << "DRAM TRNG on " << profile.label() << "\n\n";

    DramTrng trng(bender, 0, 1);
    const std::size_t cells = trng.calibrate(32);
    std::cout << "Calibration: " << cells << "/" << geometry.columns
              << " columns qualify as entropy cells\n";

    const std::size_t bits = 4096;
    const BitVector random = trng.randomBits(bits);
    const double ones_rate = static_cast<double>(random.popcount()) /
                             static_cast<double>(bits);
    std::size_t runs = 1;
    std::size_t longest = 1;
    std::size_t current = 1;
    for (std::size_t i = 1; i < random.size(); ++i) {
        if (random.get(i) != random.get(i - 1)) {
            ++runs;
            current = 1;
        } else {
            ++current;
        }
        longest = std::max(longest, current);
    }

    Table table({"metric", "value", "ideal"});
    table.addRow();
    table.addCell(std::string("bits generated"));
    table.addCell(static_cast<std::uint64_t>(bits));
    table.addCell(std::string("-"));
    table.addRow();
    table.addCell(std::string("ones rate"));
    table.addCell(ones_rate, 4);
    table.addCell(std::string("0.5"));
    table.addRow();
    table.addCell(std::string("runs"));
    table.addCell(static_cast<std::uint64_t>(runs));
    table.addCell(std::to_string(bits / 2));
    table.addRow();
    table.addCell(std::string("longest run"));
    table.addCell(static_cast<std::uint64_t>(longest));
    table.addCell(std::string("~12 (log2 n)"));
    table.addRow();
    table.addCell(std::string("raw activations used"));
    table.addCell(trng.rawSamplesDrawn());
    table.addCell(std::string("-"));
    table.print(std::cout);

    std::cout << "\nFirst 64 bits: ";
    for (std::size_t i = 0; i < 64; ++i)
        std::cout << (random.get(i) ? '1' : '0');
    std::cout << "\n";
    return 0;
}
