/**
 * @file
 * Quickstart: create a simulated COTS DDR4 chip, perform in-DRAM NOT
 * and 2-input AND/NAND/OR/NOR operations on it through the
 * DramBender interface, and verify the results against the golden
 * software model.
 */

#include <iostream>

#include "common/table.hh"
#include "exampleutil.hh"
#include "fcdram/analyzer.hh"
#include "fcdram/golden.hh"
#include "dram/openbitline.hh"
#include "fcdram/ops.hh"

using namespace fcdram;

int
main()
{
    // One shared session per process: it owns the Table-1 inventory
    // and the simulated geometry; mutable chips for command-level
    // work are checked out of it.
    FleetSession session;
    const GeometryConfig &geometry = session.config().geometry;

    // An SK Hynix 4Gb A-die x8 module at 2133 MT/s: the strongest
    // logic design in the paper's fleet.
    const FleetSession::Module &module = exampleutil::requireModule(
        session, Manufacturer::SkHynix, 4, 'A', 2133);
    const ChipProfile profile = module.spec->profile();
    exampleutil::CheckedOutChip checkout(session, profile, /*chipSeed=*/1,
                                         /*benderSeed=*/7);
    Chip &chip = checkout.chip;
    DramBender &bender = checkout.bender;
    Ops ops(bender);

    std::cout << "Chip under test: " << profile.label() << "\n";
    std::cout << "Geometry: " << geometry.subarraysPerBank
              << " subarrays x " << geometry.rowsPerSubarray
              << " rows x " << geometry.columns << " columns\n\n";

    // ---- NOT ------------------------------------------------------
    // Find a 1:1 activation pair between subarrays 0 and 1.
    const auto pairs = findActivationPairs(chip, 1, 1, 1, /*seed=*/3);
    if (pairs.empty()) {
        std::cerr << "No 1:1 activation pair found\n";
        return 1;
    }
    const RowId src = composeRow(geometry, 0, pairs.front().first);
    const RowId dst = composeRow(geometry, 1, pairs.front().second);

    BitVector input(static_cast<std::size_t>(geometry.columns));
    Rng rng(99);
    input.randomize(rng);
    bender.writeRow(0, src, input);
    bender.writeRow(0, dst, input); // Retention must look like failure.

    const auto destinations = ops.executeNot(0, src, dst);
    const BitVector not_result = bender.readRow(0, destinations.front());
    const BitVector expected = goldenNot(input);
    const auto shared = sharedColumns(geometry, 0, 1);
    std::size_t correct = 0;
    for (const ColId col : shared)
        correct += not_result.get(col) == expected.get(col) ? 1 : 0;
    std::cout << "In-DRAM NOT: " << correct << "/" << shared.size()
              << " shared-column bits correct ("
              << formatDouble(100.0 * static_cast<double>(correct) /
                              static_cast<double>(shared.size()))
              << "%)\n";

    // ---- 2-input logic --------------------------------------------
    const auto logic_pairs =
        findActivationPairs(chip, 2, 2, 1, /*seed=*/11);
    if (logic_pairs.empty()) {
        std::cerr << "No 2:2 activation pair found\n";
        return 1;
    }
    const ActivationSets sets = chip.decoder().neighborActivation(
        logic_pairs.front().first, logic_pairs.front().second);

    std::vector<RowId> ref_rows;
    std::vector<RowId> com_rows;
    for (const RowId local : sets.firstRows)
        ref_rows.push_back(composeRow(geometry, 0, local));
    for (const RowId local : sets.secondRows)
        com_rows.push_back(composeRow(geometry, 1, local));

    std::vector<BitVector> operands(
        2, BitVector(static_cast<std::size_t>(geometry.columns)));
    operands[0].randomize(rng);
    operands[1].randomize(rng);

    for (const BoolOp op : {BoolOp::And, BoolOp::Or}) {
        if (!ops.initReference(0, op, ref_rows)) {
            std::cerr << "Frac initialization failed\n";
            return 1;
        }
        for (std::size_t i = 0; i < com_rows.size(); ++i)
            bender.writeRow(0, com_rows[i], operands[i]);
        const LogicOpResult result = ops.executeLogic(
            0, op, composeRow(geometry, 0, logic_pairs.front().first),
            composeRow(geometry, 1, logic_pairs.front().second),
            ref_rows, com_rows);
        const BitVector golden_direct = goldenOp(op, operands);
        const BitVector golden_inverted = ~golden_direct;
        std::size_t ok_direct = 0;
        std::size_t ok_inverted = 0;
        for (const ColId col : result.columns) {
            ok_direct += result.computeResult.get(col) ==
                                 golden_direct.get(col)
                             ? 1
                             : 0;
            ok_inverted += result.referenceResult.get(col) ==
                                   golden_inverted.get(col)
                               ? 1
                               : 0;
        }
        std::cout << "In-DRAM 2-input " << toString(op) << ": "
                  << ok_direct << "/" << result.columns.size()
                  << " correct; simultaneous "
                  << toString(op == BoolOp::And ? BoolOp::Nand
                                                : BoolOp::Nor)
                  << ": " << ok_inverted << "/" << result.columns.size()
                  << " correct\n";
    }

    std::cout << "\nDone. See examples/bitmap_query.cc for a workload\n"
                 "and bench/ for the paper's characterization.\n";
    return 0;
}
